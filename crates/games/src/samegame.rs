//! SameGame — the classic tile-collapsing puzzle, the other standard NMCS
//! benchmark domain (Cazenave's IJCAI'09 NMCS paper evaluates on it).
//!
//! Rules: click a group of ≥2 orthogonally-connected same-coloured tiles to
//! remove it, scoring `(n − 2)²` for a group of `n`. Tiles above fall
//! down; empty columns close up to the left. Clearing the whole board
//! earns a +1000 bonus. The game ends when no group of ≥2 remains.

use nmcs_core::{mix64, CodedGame, Game, Rng, Score, Undo};

/// Bonus for clearing the entire board.
pub const CLEAR_BONUS: Score = 1000;

/// Domain-separation salts of the board hash (non-zero: `mix64(0) == 0`).
const SAMEGAME_COL_SALT: u64 = 0x1fb7_62d9_8e04_c3a5;
const SAMEGAME_HASH_SALT: u64 = 0xc50a_39e6_271d_b84f;

/// Content hash of one column (bottom-up tile colours). The sequential
/// fold encodes the length implicitly; an empty column hashes to the
/// salt itself.
#[inline]
fn column_hash(col: &[u8]) -> u64 {
    let mut h = SAMEGAME_COL_SALT;
    for &c in col {
        h = mix64(h ^ c as u64);
    }
    h
}

/// Reusable flood-fill scratch of the playout core. `legal_moves` takes
/// `&self`, so the buffers live in a thread-local (cheap: one borrow per
/// movegen) instead of the game struct. Visit marks are epoch-stamped so
/// nothing is ever cleared between calls.
#[derive(Default)]
struct FloodScratch {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<(u8, u8)>,
    members: Vec<(u8, u8)>,
    /// Flat colour snapshot (`0` = empty) rebuilt per movegen: floods
    /// then read one array instead of chasing `Vec<Vec<u8>>` bounds.
    grid: Vec<u8>,
}

impl FloodScratch {
    /// Opens a fresh visit epoch over `cells` cells.
    fn begin(&mut self, cells: usize) {
        if self.stamp.len() < cells {
            self.stamp.resize(cells, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    fn seen(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    #[inline]
    fn visit(&mut self, i: usize) {
        self.stamp[i] = self.epoch;
    }
}

thread_local! {
    static FLOOD: std::cell::RefCell<FloodScratch> =
        std::cell::RefCell::new(FloodScratch::default());
}

/// One `apply` frame of the undo journal: where this move's reversal
/// data starts in the shared spill buffers, plus its scalar deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TapFrame {
    /// Start of this frame's tiles in `undo_tiles`.
    tiles_start: u32,
    /// Start of this frame's collapsed-column indices in `undo_cols`.
    cols_start: u32,
    /// Score earned by the move (group score plus any clear bonus).
    score_delta: Score,
}

/// A SameGame position. Columns are stored bottom-up, which makes gravity
/// and column removal O(column).
#[derive(Debug, Clone)]
pub struct SameGame {
    /// `cols[x][y]` = colour of the tile at column `x`, height `y`
    /// (bottom-up). Colours are `1..=colors`.
    cols: Vec<Vec<u8>>,
    /// `col_hash[x]` = [`column_hash`] of `cols[x]`, maintained through
    /// every move and undo so [`Game::state_hash`] is an O(width) fold
    /// instead of an O(cells) rescan. Derived state: deliberately
    /// excluded from `PartialEq`.
    col_hash: Vec<u64>,
    width: usize,
    height: usize,
    accumulated: Score,
    moves: usize,
    /// Spill buffer of removed tiles `(x, y, colour)` in pre-removal
    /// coordinates, ascending `(x, y)` — re-inserting in this order
    /// rebuilds every column exactly.
    undo_tiles: Vec<(u8, u8, u8)>,
    /// Spill buffer of pre-collapse indices of columns this move emptied,
    /// ascending.
    undo_cols: Vec<u8>,
    /// One frame per outstanding `apply`.
    undo_frames: Vec<TapFrame>,
}

/// Equality is over the *observable position* — board, score, move
/// count — and deliberately ignores the undo journal: a position reached
/// via `play` equals the same position reached via `apply`, so `==`
/// stays usable for transposition checks and deduplication.
impl PartialEq for SameGame {
    fn eq(&self, other: &Self) -> bool {
        self.cols == other.cols
            && self.width == other.width
            && self.height == other.height
            && self.accumulated == other.accumulated
            && self.moves == other.moves
    }
}

impl Eq for SameGame {}

/// A move: remove the group containing this cell. `(x, y)` is the
/// *canonical* cell of the group (smallest `x`, then smallest `y`), so two
/// moves are equal iff they name the same group. Serde-able so
/// `SearchReport<Tap>` rows persist and replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Tap {
    pub x: u8,
    pub y: u8,
}

impl SameGame {
    /// Builds a board from rows given top-down (as usually printed), each
    /// row a slice of colours in `1..=9`.
    pub fn from_rows(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty());
        let width = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == width), "ragged rows");
        let height = rows.len();
        let mut cols = vec![Vec::with_capacity(height); width];
        for row in rows.iter().rev() {
            for (x, &c) in row.iter().enumerate() {
                assert!((1..=9).contains(&c), "colours are 1..=9");
                cols[x].push(c);
            }
        }
        let col_hash = cols.iter().map(|c| column_hash(c)).collect();
        Self {
            cols,
            col_hash,
            width,
            height,
            accumulated: 0,
            moves: 0,
            undo_tiles: Vec::new(),
            undo_cols: Vec::new(),
            undo_frames: Vec::new(),
        }
    }

    /// A pseudo-random `width × height` board with `colors` colours,
    /// matching the standard benchmark generator (uniform i.i.d. tiles).
    pub fn random(width: usize, height: usize, colors: u8, seed: u64) -> Self {
        assert!(width > 0 && height > 0 && (1..=9).contains(&colors));
        let mut rng = Rng::seeded(seed);
        let cols: Vec<Vec<u8>> = (0..width)
            .map(|_| {
                (0..height)
                    .map(|_| rng.below(colors as usize) as u8 + 1)
                    .collect()
            })
            .collect();
        let col_hash = cols.iter().map(|c| column_hash(c)).collect();
        Self {
            cols,
            col_hash,
            width,
            height,
            accumulated: 0,
            moves: 0,
            undo_tiles: Vec::new(),
            undo_cols: Vec::new(),
            undo_frames: Vec::new(),
        }
    }

    /// Colour at `(x, y)` (bottom-up), if a tile is present.
    pub fn tile(&self, x: usize, y: usize) -> Option<u8> {
        self.cols.get(x).and_then(|c| c.get(y)).copied()
    }

    /// Remaining tile count.
    pub fn tiles_left(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// Whether every tile has been removed.
    pub fn cleared(&self) -> bool {
        self.cols.iter().all(Vec::is_empty)
    }

    /// Flood-fills the group containing `(x, y)` into `members` using the
    /// shared scratch (the allocation-free playout core). `members` is
    /// cleared first.
    fn flood_into(
        &self,
        x: usize,
        y: usize,
        scratch: &mut FloodScratch,
        members: &mut Vec<(u8, u8)>,
    ) {
        members.clear();
        let Some(color) = self.tile(x, y) else {
            return;
        };
        scratch.begin(self.width * self.height);
        scratch.stack.clear();
        scratch.visit(x * self.height + y);
        scratch.stack.push((x as u8, y as u8));
        while let Some((cx, cy)) = scratch.stack.pop() {
            members.push((cx, cy));
            let (cx, cy) = (cx as usize, cy as usize);
            let neighbours = [
                (cx.wrapping_sub(1), cy),
                (cx + 1, cy),
                (cx, cy.wrapping_sub(1)),
                (cx, cy + 1),
            ];
            for (nx, ny) in neighbours {
                if nx < self.width
                    && ny < self.height
                    && !scratch.seen(nx * self.height + ny)
                    && self.tile(nx, ny) == Some(color)
                {
                    scratch.visit(nx * self.height + ny);
                    scratch.stack.push((nx as u8, ny as u8));
                }
            }
        }
    }

    /// Enumerates the canonical taps of groups of ≥2 tiles into `out`, in
    /// the same order as [`SameGame::groups_reference`] (first-visited
    /// cell order — the order is part of the determinism contract, since
    /// move enumeration feeds the search RNG).
    ///
    /// One epoch-stamped flood pass over the board with reusable buffers:
    /// every tile is visited exactly once and nothing is allocated after
    /// warm-up, against the reference's O(cells) fresh allocations per
    /// call. This is the hot function of SameGame playouts.
    fn groups_into(&self, scratch: &mut FloodScratch, out: &mut Vec<Tap>) {
        let (w, h) = (self.width, self.height);
        scratch.begin(w * h);
        // Snapshot the columns into a flat colour grid so the flood reads
        // one contiguous array (0 = empty cell).
        scratch.grid.clear();
        scratch.grid.resize(w * h, 0);
        for (x, col) in self.cols.iter().enumerate() {
            scratch.grid[x * h..x * h + col.len()].copy_from_slice(col);
        }
        for x in 0..w {
            for y in 0..self.cols[x].len() {
                if scratch.seen(x * h + y) {
                    continue;
                }
                let color = self.cols[x][y];
                // Flood the group, tracking size and canonical cell.
                scratch.stack.clear();
                scratch.visit(x * h + y);
                scratch.stack.push((x as u8, y as u8));
                let mut size = 0usize;
                let mut canon = (u8::MAX, u8::MAX);
                while let Some((cx, cy)) = scratch.stack.pop() {
                    size += 1;
                    if (cx, cy) < canon {
                        canon = (cx, cy);
                    }
                    let (cx, cy) = (cx as usize, cy as usize);
                    let i = cx * h + cy;
                    // Up/down are index ±1 in the flat grid; left/right ±h.
                    if cy + 1 < h && scratch.grid[i + 1] == color && !scratch.seen(i + 1) {
                        scratch.visit(i + 1);
                        scratch.stack.push((cx as u8, cy as u8 + 1));
                    }
                    if cy > 0 && scratch.grid[i - 1] == color && !scratch.seen(i - 1) {
                        scratch.visit(i - 1);
                        scratch.stack.push((cx as u8, cy as u8 - 1));
                    }
                    if cx + 1 < w && scratch.grid[i + h] == color && !scratch.seen(i + h) {
                        scratch.visit(i + h);
                        scratch.stack.push((cx as u8 + 1, cy as u8));
                    }
                    if cx > 0 && scratch.grid[i - h] == color && !scratch.seen(i - h) {
                        scratch.visit(i - h);
                        scratch.stack.push((cx as u8 - 1, cy as u8));
                    }
                }
                if size >= 2 {
                    out.push(Tap {
                        x: canon.0,
                        y: canon.1,
                    });
                }
            }
        }
    }

    /// The original allocating group enumeration, kept verbatim as the
    /// executable specification of move generation: the property tests
    /// assert the scratch-buffer path matches it along random games, and
    /// the `clone-path vs undo-path` benches use it to reproduce the
    /// seed's playout cost profile.
    #[doc(hidden)]
    pub fn groups_reference(&self) -> Vec<(Tap, usize)> {
        let group = |x: usize, y: usize| -> Vec<(usize, usize)> {
            let Some(color) = self.tile(x, y) else {
                return Vec::new();
            };
            let mut seen = vec![false; self.width * self.height];
            let mut stack = vec![(x, y)];
            let mut members = Vec::new();
            seen[x * self.height + y] = true;
            while let Some((cx, cy)) = stack.pop() {
                members.push((cx, cy));
                let neighbours = [
                    (cx.wrapping_sub(1), cy),
                    (cx + 1, cy),
                    (cx, cy.wrapping_sub(1)),
                    (cx, cy + 1),
                ];
                for (nx, ny) in neighbours {
                    if nx < self.width
                        && ny < self.height
                        && self.tile(nx, ny) == Some(color)
                        && !seen[nx * self.height + ny]
                    {
                        seen[nx * self.height + ny] = true;
                        stack.push((nx, ny));
                    }
                }
            }
            members
        };
        let mut seen = vec![false; self.width * self.height];
        let mut out = Vec::new();
        for x in 0..self.width {
            for y in 0..self.cols[x].len() {
                if seen[x * self.height + y] {
                    continue;
                }
                let members = group(x, y);
                let mut canon = (usize::MAX, usize::MAX);
                for &(mx, my) in &members {
                    seen[mx * self.height + my] = true;
                    if (mx, my) < canon {
                        canon = (mx, my);
                    }
                }
                if members.len() >= 2 {
                    out.push((
                        Tap {
                            x: canon.0 as u8,
                            y: canon.1 as u8,
                        },
                        members.len(),
                    ));
                }
            }
        }
        out
    }

    /// Removes the group containing the tap, applies gravity and column
    /// collapse, and returns the group size. Panics if the group has
    /// fewer than two tiles.
    ///
    /// With `record`, journals everything needed to reverse the move in
    /// the undo spill buffers (see [`TapFrame`]): the removed tiles in
    /// pre-removal coordinates and the pre-collapse indices of columns
    /// the move emptied. The journal relies on the invariant that empty
    /// columns only ever sit at the right end (construction fills every
    /// column; collapse re-packs).
    fn remove_inner(&mut self, tap: Tap, record: bool) -> usize {
        FLOOD.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut members = std::mem::take(&mut scratch.members);
            self.flood_into(tap.x as usize, tap.y as usize, scratch, &mut members);
            let n = members.len();
            assert!(n >= 2, "tap on a group of {n} tiles");
            // One ascending (x, y) sort serves both directions: reversed
            // iteration drops tiles per column highest-y first (so
            // indices stay valid), and the undo journal re-inserts in
            // forward order to rebuild columns bottom-up.
            members.sort_unstable();
            if record {
                let color = self
                    .tile(tap.x as usize, tap.y as usize)
                    .expect("tap on a tile");
                for &(x, y) in &members {
                    self.undo_tiles.push((x, y, color));
                }
            }
            for &(x, y) in members.iter().rev() {
                self.cols[x as usize].remove(y as usize);
            }
            if record {
                // First member per column checks for a newly-emptied
                // column (ascending x, as undo's re-open expects).
                let mut last_x = u16::MAX;
                for &(x, _) in &members {
                    if x as u16 != last_x {
                        last_x = x as u16;
                        if self.cols[x as usize].is_empty() {
                            self.undo_cols.push(x);
                        }
                    }
                }
            }
            // Refresh the content hash of every column the removal
            // touched (ascending members make distinct-x detection a
            // one-token lookback), while indices are still pre-collapse.
            let mut last_x = u16::MAX;
            for &(x, _) in &members {
                if x as u16 != last_x {
                    last_x = x as u16;
                    self.col_hash[x as usize] = column_hash(&self.cols[x as usize]);
                }
            }
            // Stable partition: surviving columns slide left in order,
            // emptied columns become the trailing pads with their
            // buffers (and capacity) intact — the collapse neither
            // drops nor creates a single Vec. The hash vector mirrors
            // every swap so `col_hash[x]` keeps tracking `cols[x]`.
            let mut write = 0;
            for read in 0..self.cols.len() {
                if !self.cols[read].is_empty() {
                    self.cols.swap(read, write);
                    self.col_hash.swap(read, write);
                    write += 1;
                }
            }
            scratch.members = members;
            n
        })
    }
}

impl CodedGame for SameGame {
    /// Codes combine the tap cell with the group's colour. Gravity moves
    /// tiles between positions, so identical codes can denote different
    /// groups in different positions — NRPA tolerates such sharing (the
    /// policy then generalises over "tap colour c near (x, y)", which is
    /// the standard pragmatic choice for SameGame policies).
    fn move_code(&self, mv: &Tap) -> u64 {
        let color = self.tile(mv.x as usize, mv.y as usize).unwrap_or(0) as u64;
        ((mv.x as u64) << 16) | ((mv.y as u64) << 8) | color
    }
}

impl Game for SameGame {
    type Move = Tap;

    fn legal_moves(&self, out: &mut Vec<Tap>) {
        FLOOD.with(|cell| self.groups_into(&mut cell.borrow_mut(), out));
    }

    fn is_terminal(&self) -> bool {
        // A legal move exists iff some two same-coloured tiles touch
        // orthogonally — no flood fill needed.
        for (x, col) in self.cols.iter().enumerate() {
            for (y, &c) in col.iter().enumerate() {
                if y + 1 < col.len() && col[y + 1] == c {
                    return false;
                }
                if let Some(right) = self.cols.get(x + 1) {
                    if right.get(y) == Some(&c) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn play(&mut self, mv: &Tap) {
        let n = self.remove_inner(*mv, false);
        self.accumulated += ((n - 2) * (n - 2)) as Score;
        self.moves += 1;
        if self.cleared() {
            self.accumulated += CLEAR_BONUS;
        }
    }

    fn score(&self) -> Score {
        self.accumulated
    }

    fn moves_played(&self) -> usize {
        self.moves
    }

    /// O(width) fold over the maintained per-column hashes plus the two
    /// scalars a transposition must also agree on (score and move
    /// count — distinct merge orders can reach the same board with
    /// different earnings, and those positions must not share
    /// statistics). Allocation-free; the per-column maintenance lives in
    /// the `remove_inner`/`undo` journal.
    // nmcs-lint: hot-entry
    fn state_hash(&self) -> u64 {
        let mut h = SAMEGAME_HASH_SALT;
        for &ch in &self.col_hash {
            h = mix64(h ^ ch);
        }
        h = mix64(h ^ self.accumulated as u64);
        mix64(h ^ self.moves as u64)
    }

    // Scratch-state fast path: `apply` journals the removed group and the
    // collapse it caused; `undo` re-opens collapsed columns and re-inserts
    // the tiles, which also reverses gravity (a removal never reorders
    // surviving tiles within a column).

    fn supports_undo(&self) -> bool {
        true
    }

    // nmcs-lint: hot-entry
    fn apply(&mut self, mv: &Tap) -> Undo<Self> {
        let tiles_start = self.undo_tiles.len() as u32;
        let cols_start = self.undo_cols.len() as u32;
        let n = self.remove_inner(*mv, true);
        let mut score_delta = ((n - 2) * (n - 2)) as Score;
        self.moves += 1;
        if self.cleared() {
            score_delta += CLEAR_BONUS;
        }
        self.accumulated += score_delta;
        self.undo_frames.push(TapFrame {
            tiles_start,
            cols_start,
            score_delta,
        });
        Undo::internal()
    }

    // nmcs-lint: hot-entry
    fn undo(&mut self, token: Undo<Self>) {
        debug_assert!(token.is_internal());
        let frame = self.undo_frames.pop().expect("undo without apply");

        // 1. Reverse the column collapse: re-open the emptied columns at
        //    their pre-collapse indices (ascending inserts hit the
        //    recorded absolute positions exactly).
        //    Each re-opened column recycles a pad popped from the right
        //    end (pads are interchangeable empty columns, and ascending
        //    re-open indices keep the remaining pads trailing), so the
        //    unwind allocates nothing.
        let cols_start = frame.cols_start as usize;
        for i in cols_start..self.undo_cols.len() {
            let x = self.undo_cols[i] as usize;
            let pad = self.cols.pop().expect("collapse keeps the width");
            debug_assert!(pad.is_empty());
            self.cols.insert(x, pad);
            // Mirror on the hash vector: a trailing pad hash moves to x
            // (every empty column hashes to the salt, so pop-and-insert
            // is exact).
            let pad_hash = self.col_hash.pop().expect("hash tracks width");
            debug_assert_eq!(pad_hash, column_hash(&[]));
            self.col_hash.insert(x, pad_hash);
        }
        self.undo_cols.truncate(cols_start);

        // 2. Re-insert the removed tiles; ascending (x, y) order rebuilds
        //    each column bottom-up. Refresh each distinct touched
        //    column's hash afterwards (same lookback as the removal).
        let tiles_start = frame.tiles_start as usize;
        for i in tiles_start..self.undo_tiles.len() {
            let (x, y, color) = self.undo_tiles[i];
            self.cols[x as usize].insert(y as usize, color);
        }
        let mut last_x = u16::MAX;
        for i in tiles_start..self.undo_tiles.len() {
            let x = self.undo_tiles[i].0;
            if x as u16 != last_x {
                last_x = x as u16;
                self.col_hash[x as usize] = column_hash(&self.cols[x as usize]);
            }
        }
        self.undo_tiles.truncate(tiles_start);

        // 3. Scalars.
        self.accumulated -= frame.score_delta;
        self.moves -= 1;
    }
}

// The unit tests exercise the deprecated shims on purpose (legacy-
// surface regression net; the unified API has its own coverage).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::{nested, sample, NestedConfig};

    #[test]
    fn from_rows_round_trips_geometry() {
        let g = SameGame::from_rows(&[&[1, 2], &[3, 1]]);
        // Bottom row is [3,1], top row [1,2].
        assert_eq!(g.tile(0, 0), Some(3));
        assert_eq!(g.tile(1, 0), Some(1));
        assert_eq!(g.tile(0, 1), Some(1));
        assert_eq!(g.tile(1, 1), Some(2));
        assert_eq!(g.tiles_left(), 4);
    }

    #[test]
    fn groups_require_two_tiles() {
        let g = SameGame::from_rows(&[&[1, 2], &[2, 1]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert!(moves.is_empty(), "diagonal same-colours do not connect");
    }

    #[test]
    fn removing_a_group_scores_quadratically() {
        // Column of three 1s next to isolated 2s.
        let mut g = SameGame::from_rows(&[&[1, 2], &[1, 3], &[1, 2]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves.len(), 1);
        g.play(&moves[0]);
        assert_eq!(g.score(), 1, "(3-2)^2 = 1");
        assert_eq!(g.tiles_left(), 3);
    }

    #[test]
    fn gravity_pulls_tiles_down() {
        // Remove the bottom pair; the top tiles must fall.
        let mut g = SameGame::from_rows(&[&[2, 3], &[1, 1]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves.len(), 1);
        g.play(&moves[0]);
        assert_eq!(g.tile(0, 0), Some(2), "2 fell to the bottom");
        assert_eq!(g.tile(1, 0), Some(3));
    }

    #[test]
    fn empty_columns_collapse_left() {
        // Left column of two 1s, right column 2 over 3; removing the 1s
        // must shift the right column to x=0.
        let mut g = SameGame::from_rows(&[&[1, 2], &[1, 3]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        let tap_left = moves.iter().find(|t| t.x == 0).copied().unwrap();
        g.play(&tap_left);
        assert_eq!(g.tile(0, 0), Some(3));
        assert_eq!(g.tile(0, 1), Some(2));
        assert_eq!(g.tile(1, 0), None);
    }

    #[test]
    fn clearing_the_board_earns_the_bonus() {
        let mut g = SameGame::from_rows(&[&[1, 1], &[1, 1]]);
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves.len(), 1);
        g.play(&moves[0]);
        assert!(g.cleared());
        assert_eq!(g.score(), 4 + CLEAR_BONUS, "(4-2)^2 + bonus");
    }

    #[test]
    fn random_board_is_deterministic_per_seed() {
        let a = SameGame::random(10, 10, 4, 7);
        let b = SameGame::random(10, 10, 4, 7);
        let c = SameGame::random(10, 10, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn playouts_terminate_and_score_consistently() {
        for seed in 0..5 {
            let g = SameGame::random(8, 8, 4, seed);
            let r = sample(&g, &mut Rng::seeded(seed));
            let mut replay = g.clone();
            for mv in &r.sequence {
                replay.play(mv);
            }
            assert_eq!(replay.score(), r.score, "seed {seed}");
            assert!(replay.is_terminal());
        }
    }

    #[test]
    fn nmcs_improves_over_random_play() {
        let g = SameGame::random(6, 6, 3, 42);
        let mut rng = Rng::seeded(1);
        let random_avg: f64 = (0..20)
            .map(|_| sample(&g, &mut rng).score as f64)
            .sum::<f64>()
            / 20.0;
        let nmcs = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(2));
        assert!(
            (nmcs.score as f64) > random_avg,
            "NMCS {} should beat random avg {random_avg}",
            nmcs.score
        );
    }

    #[test]
    fn scratch_movegen_matches_the_reference_along_random_games() {
        for seed in 0..10 {
            let mut g = SameGame::random(12, 12, 4, seed);
            let mut rng = Rng::seeded(seed);
            let mut moves = Vec::new();
            loop {
                g.legal_moves_into(&mut moves);
                let reference: Vec<Tap> =
                    g.groups_reference().into_iter().map(|(t, _)| t).collect();
                assert_eq!(
                    moves, reference,
                    "seed {seed}: scratch movegen must match the reference, in order"
                );
                assert_eq!(g.is_terminal(), moves.is_empty(), "seed {seed}");
                if moves.is_empty() {
                    break;
                }
                let mv = moves[rng.below(moves.len())];
                g.play(&mv);
            }
        }
    }

    #[test]
    fn apply_undo_round_trips_every_move_of_random_positions() {
        for seed in 0..8 {
            let mut g = SameGame::random(8, 8, 3, seed);
            let mut rng = Rng::seeded(seed + 500);
            let mut moves = Vec::new();
            // Walk a few plies in, then round-trip every legal move.
            loop {
                g.legal_moves_into(&mut moves);
                if moves.is_empty() {
                    break;
                }
                for mv in moves.clone() {
                    let before = g.clone();
                    let token = g.apply(&mv);
                    let undone = g.clone();
                    assert_ne!(undone.tiles_left(), before.tiles_left());
                    g.undo(token);
                    assert_eq!(g, before, "seed {seed}: undo must restore the board");
                }
                let mv = moves[rng.below(moves.len())];
                g.play(&mv);
            }
        }
    }

    #[test]
    fn play_and_apply_reach_equal_positions() {
        // `==` is over the observable board: the undo journal an `apply`
        // leaves behind must not make identical positions compare unequal.
        let root = SameGame::random(6, 6, 3, 1);
        let mut moves = Vec::new();
        root.legal_moves(&mut moves);
        let mv = moves[0];
        let mut played = root.clone();
        played.play(&mv);
        let mut applied = root.clone();
        let _token = applied.apply(&mv);
        assert_eq!(played, applied);
    }

    #[test]
    fn deep_apply_chains_unwind_exactly() {
        for seed in 0..5 {
            let root = SameGame::random(10, 10, 4, seed);
            let mut g = root.clone();
            let mut rng = Rng::seeded(seed);
            let mut moves = Vec::new();
            let mut tokens = Vec::new();
            loop {
                g.legal_moves_into(&mut moves);
                if moves.is_empty() {
                    break;
                }
                let mv = moves[rng.below(moves.len())];
                tokens.push(g.apply(&mv));
            }
            assert!(g.is_terminal());
            while let Some(t) = tokens.pop() {
                g.undo(t);
            }
            assert_eq!(g, root, "seed {seed}: full-game unwind restores the root");
        }
    }

    #[test]
    fn undo_path_searches_match_snapshot_path() {
        use nmcs_core::SnapshotOnly;
        for seed in 0..3 {
            let g = SameGame::random(6, 6, 3, seed);
            let fast = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
            let slow = nested(
                &SnapshotOnly(g.clone()),
                1,
                &NestedConfig::paper(),
                &mut Rng::seeded(seed),
            );
            assert_eq!(fast.score, slow.score, "seed {seed}");
            assert_eq!(fast.sequence, slow.sequence, "seed {seed}");
            assert_eq!(fast.stats, slow.stats, "seed {seed}");
        }
    }

    /// From-scratch reference of the maintained hash.
    fn rehash(g: &SameGame) -> u64 {
        let mut h = SAMEGAME_HASH_SALT;
        for col in &g.cols {
            h = mix64(h ^ column_hash(col));
        }
        h = mix64(h ^ g.accumulated as u64);
        mix64(h ^ g.moves as u64)
    }

    #[test]
    fn state_hash_is_maintained_incrementally_along_random_games() {
        for seed in 0..6 {
            let mut g = SameGame::random(8, 8, 3, seed);
            let mut rng = Rng::seeded(seed + 900);
            let mut moves = Vec::new();
            loop {
                assert_eq!(g.state_hash(), rehash(&g), "seed {seed}: play path");
                g.legal_moves_into(&mut moves);
                if moves.is_empty() {
                    break;
                }
                // Round-trip one apply/undo and check the hash restores.
                let before = g.state_hash();
                let mv = moves[rng.below(moves.len())];
                let token = g.apply(&mv);
                assert_eq!(g.state_hash(), rehash(&g), "seed {seed}: apply path");
                assert_ne!(g.state_hash(), before, "a removal changes the board");
                g.undo(token);
                assert_eq!(g.state_hash(), before, "seed {seed}: undo restores");
                g.play(&mv);
            }
        }
    }

    #[test]
    fn equal_positions_hash_equal_regardless_of_journal() {
        let root = SameGame::random(6, 6, 3, 4);
        let mut moves = Vec::new();
        root.legal_moves(&mut moves);
        let mut played = root.clone();
        played.play(&moves[0]);
        let mut applied = root.clone();
        let _token = applied.apply(&moves[0]);
        assert_eq!(played, applied);
        assert_eq!(played.state_hash(), applied.state_hash());
    }

    #[test]
    fn canonical_tap_is_stable_under_enumeration_order() {
        let g = SameGame::random(8, 8, 3, 3);
        let mut a = Vec::new();
        g.legal_moves(&mut a);
        let mut b = Vec::new();
        g.legal_moves(&mut b);
        assert_eq!(a, b);
        // Canonical cells are unique.
        let mut set = std::collections::HashSet::new();
        for t in &a {
            assert!(set.insert((t.x, t.y)), "duplicate canonical tap {t:?}");
        }
    }
}
