//! # nmcs-games — additional search domains
//!
//! Domains beyond Morpion Solitaire that exercise the generic
//! [`nmcs_core::Game`] API:
//!
//! * [`samegame`] — SameGame, the tile-collapsing puzzle that is the other
//!   classic NMCS benchmark (Cazenave, IJCAI'09).
//! * [`tsp`] — a rollout-style Travelling Salesman game, the domain of the
//!   parallel-rollout prior work the paper compares against (Guerriero &
//!   Mancini 2005).
//! * [`sudoku`] — Sudoku with fail-first cell ordering, the third domain
//!   of Cazenave's NMCS evaluation (16×16 there; parametric here).
//! * [`toy`] — tiny games with *known optima*, used across the workspace
//!   to validate that every search and every parallel backend actually
//!   finds what it should.

pub mod samegame;
pub mod sudoku;
pub mod toy;
pub mod tsp;

pub use samegame::{SameGame, Tap, CLEAR_BONUS};
pub use sudoku::{Fill, Sudoku};
pub use toy::{NeedleLadder, SumGame};
pub use tsp::{TspGame, TspInstance};
