//! A rollout-style Travelling Salesman game.
//!
//! The paper's closest prior work on parallel rollouts (Guerriero &
//! Mancini 2005, reference \[15\]) evaluated on TSP and SOP; this module
//! provides the TSP analogue as an NMCS domain: the state is a partial
//! tour, a move visits an unvisited city, and the score is the *negated*
//! tour length in integer micro-units (NMCS maximises).

use nmcs_core::{mix64, CodedGame, Game, Rng, Score, Undo};
use std::cell::RefCell;

/// Domain-separation salts of [`TspGame`]'s [`Game::state_hash`]:
/// visited-set keys and the scalar tail mix.
const TSP_HASH_CITY_SALT: u64 = 0x91c4_7e02_d5aa_36b9;
const TSP_HASH_TAIL_SALT: u64 = 0x0b63_f8d1_49e2_7c55;

thread_local! {
    /// Candidate scratch for neighbourhood-pruned move generation —
    /// reused across calls so the playout path stays allocation-free
    /// once the buffer has grown to the instance size.
    static CANDS: RefCell<Vec<(i64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// A Euclidean TSP instance (cities on the unit square, scaled to integer
/// coordinates so all arithmetic is exact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TspInstance {
    /// City coordinates in integer units.
    pub cities: Vec<(i64, i64)>,
}

/// Coordinate scale of [`TspInstance::random`] (unit square → 0..SCALE).
pub const SCALE: i64 = 10_000;

impl TspInstance {
    /// `n` uniformly random cities on the scaled unit square.
    pub fn random(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let mut rng = Rng::seeded(seed);
        let cities = (0..n)
            .map(|_| {
                (
                    rng.below(SCALE as usize) as i64,
                    rng.below(SCALE as usize) as i64,
                )
            })
            .collect();
        Self { cities }
    }

    /// Rounded Euclidean distance between cities `a` and `b`.
    pub fn dist(&self, a: usize, b: usize) -> i64 {
        let (ax, ay) = self.cities[a];
        let (bx, by) = self.cities[b];
        let dx = (ax - bx) as f64;
        let dy = (ay - by) as f64;
        (dx.hypot(dy)).round() as i64
    }

    /// Total length of a closed tour visiting `order` (first city implicit
    /// return at the end).
    pub fn tour_length(&self, order: &[usize]) -> i64 {
        assert_eq!(order.len(), self.cities.len());
        let mut len = 0;
        for w in order.windows(2) {
            len += self.dist(w[0], w[1]);
        }
        len + self.dist(*order.last().unwrap(), order[0])
    }
}

/// A partial tour over a shared instance. Starts at city 0.
#[derive(Debug, Clone)]
pub struct TspGame {
    instance: std::sync::Arc<TspInstance>,
    visited_mask: Vec<bool>,
    tour: Vec<usize>,
    length_so_far: i64,
    /// Restrict branching to the `k` nearest unvisited cities (`None` =
    /// all). Mirrors the neighbourhood-size parameter of \[15\], which
    /// controlled their speedup.
    neighbourhood: Option<usize>,
}

impl TspGame {
    pub fn new(instance: TspInstance, neighbourhood: Option<usize>) -> Self {
        let n = instance.cities.len();
        let mut visited_mask = vec![false; n];
        visited_mask[0] = true;
        Self {
            instance: std::sync::Arc::new(instance),
            visited_mask,
            tour: vec![0],
            length_so_far: 0,
            neighbourhood,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &TspInstance {
        &self.instance
    }

    /// The tour so far (city indices).
    pub fn tour(&self) -> &[usize] {
        &self.tour
    }

    fn unvisited(&self) -> impl Iterator<Item = usize> + '_ {
        self.visited_mask
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (!v).then_some(i))
    }
}

impl CodedGame for TspGame {
    /// Codes are directed edges `(current city, next city)` — the
    /// standard NRPA-for-TSP identification.
    fn move_code(&self, mv: &u16) -> u64 {
        let here = *self.tour.last().unwrap() as u64;
        (here << 16) | *mv as u64
    }
}

impl Game for TspGame {
    /// A move is the index of the next city to visit.
    type Move = u16;

    fn legal_moves(&self, out: &mut Vec<u16>) {
        let here = *self.tour.last().unwrap();
        match self.neighbourhood {
            None => out.extend(self.unvisited().map(|c| c as u16)),
            Some(k) => CANDS.with(|cell| {
                let mut cands = cell.borrow_mut();
                cands.clear();
                cands.extend(self.unvisited().map(|c| (self.instance.dist(here, c), c)));
                cands.sort_unstable();
                out.extend(cands.iter().take(k.max(1)).map(|&(_, c)| c as u16));
            }),
        }
    }

    fn play(&mut self, mv: &u16) {
        let city = *mv as usize;
        debug_assert!(!self.visited_mask[city], "city {city} already visited");
        let here = *self.tour.last().unwrap();
        self.length_so_far += self.instance.dist(here, city);
        self.visited_mask[city] = true;
        self.tour.push(city);
    }

    /// Negated closed-tour length (larger = shorter tour). For partial
    /// tours the return edge is included, making the score an optimistic
    /// bound only at terminal states — searches compare terminal scores,
    /// so this is sound.
    fn score(&self) -> Score {
        let back = self.instance.dist(*self.tour.last().unwrap(), self.tour[0]);
        -(self.length_so_far + back)
    }

    fn moves_played(&self) -> usize {
        self.tour.len() - 1
    }

    fn is_terminal(&self) -> bool {
        self.tour.len() == self.instance.cities.len()
    }

    /// Two partial tours with the same visited set, the same current
    /// city, and the same length so far have identical futures, so the
    /// hash is an order-independent XOR over visited cities combined
    /// with those two scalars — permuted middles transpose, as a TSP
    /// table should. Allocation-free O(n) fold.
    // nmcs-lint: hot-entry
    fn state_hash(&self) -> u64 {
        let mut h = 0u64;
        for (c, &v) in self.visited_mask.iter().enumerate() {
            if v {
                h ^= mix64(c as u64 ^ TSP_HASH_CITY_SALT);
            }
        }
        let here = *self.tour.last().unwrap() as u64;
        let tail = mix64(here ^ TSP_HASH_TAIL_SALT) ^ (self.length_so_far as u64);
        mix64(h ^ mix64(tail))
    }

    // Scratch-state fast path: a move extends the tour by one city, so
    // undo pops it, re-opens the city, and subtracts the edge length.

    fn supports_undo(&self) -> bool {
        true
    }

    // nmcs-lint: hot-entry
    fn apply(&mut self, mv: &u16) -> Undo<Self> {
        self.play(mv);
        Undo::internal()
    }

    // nmcs-lint: hot-entry
    fn undo(&mut self, token: Undo<Self>) {
        debug_assert!(token.is_internal());
        let city = self.tour.pop().expect("undo without apply");
        debug_assert!(city != 0, "cannot undo the fixed start city");
        self.visited_mask[city] = false;
        let here = *self.tour.last().expect("tour keeps its start");
        self.length_so_far -= self.instance.dist(here, city);
    }
}

// The unit tests exercise the deprecated shims on purpose (legacy-
// surface regression net; the unified API has its own coverage).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::{baselines::flat_monte_carlo, nested, sample, NestedConfig};

    #[test]
    fn distances_are_symmetric_and_triangle_ok() {
        let inst = TspInstance::random(10, 1);
        for a in 0..10 {
            for b in 0..10 {
                assert_eq!(inst.dist(a, b), inst.dist(b, a));
                for c in 0..10 {
                    // Rounding can violate the triangle inequality by at
                    // most 1 per edge.
                    assert!(inst.dist(a, c) <= inst.dist(a, b) + inst.dist(b, c) + 2);
                }
            }
        }
    }

    #[test]
    fn playout_visits_every_city_once() {
        let g = TspGame::new(TspInstance::random(12, 2), None);
        let r = sample(&g, &mut Rng::seeded(3));
        assert_eq!(r.sequence.len(), 11);
        let mut replay = g;
        for mv in &r.sequence {
            replay.play(mv);
        }
        assert!(replay.is_terminal());
        let mut tour = replay.tour().to_vec();
        tour.sort_unstable();
        assert_eq!(tour, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn score_matches_tour_length_at_terminal() {
        let g = TspGame::new(TspInstance::random(8, 4), None);
        let r = sample(&g, &mut Rng::seeded(5));
        let mut replay = g;
        for mv in &r.sequence {
            replay.play(mv);
        }
        let len = replay.instance().tour_length(replay.tour());
        assert_eq!(replay.score(), -len);
    }

    #[test]
    fn nmcs_shortens_tours_versus_flat_mc() {
        let inst = TspInstance::random(14, 6);
        let g = TspGame::new(inst, None);
        let flat = flat_monte_carlo(&g, 200, &mut Rng::seeded(7));
        let nm = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(7));
        assert!(
            nm.score >= flat.score,
            "NMCS tour {} should be no longer than flat-MC tour {}",
            -nm.score,
            -flat.score
        );
    }

    #[test]
    fn neighbourhood_limits_branching() {
        let g = TspGame::new(TspInstance::random(20, 8), Some(3));
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves.len(), 3);
        let g_full = TspGame::new(TspInstance::random(20, 8), None);
        let mut all = Vec::new();
        g_full.legal_moves(&mut all);
        assert_eq!(all.len(), 19);
    }

    #[test]
    fn neighbourhood_keeps_nearest_cities() {
        let inst = TspInstance {
            cities: vec![(0, 0), (10, 0), (20, 0), (5000, 0), (9000, 0)],
        };
        let g = TspGame::new(inst, Some(2));
        let mut moves = Vec::new();
        g.legal_moves(&mut moves);
        assert_eq!(moves, vec![1, 2]);
    }

    #[test]
    fn known_square_instance_optimal_tour() {
        // Four corners of a square: the optimal closed tour is the
        // perimeter, length 4 * side.
        let inst = TspInstance {
            cities: vec![(0, 0), (0, 1000), (1000, 1000), (1000, 0)],
        };
        let g = TspGame::new(inst, None);
        let r = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(1));
        assert_eq!(r.score, -4000, "NMCS must find the perimeter tour");
    }
}
