//! Toy games with *known optima*, used to validate every search algorithm
//! and backend in the workspace: if parallel NMCS on the simulated cluster
//! cannot solve `SumGame`, something is broken in plumbing, not in luck.

use nmcs_core::{mix64, CodedGame, Game, Rng, Score, Undo};

/// Domain-separation salts of the toy games' [`Game::state_hash`] folds
/// (non-zero: `mix64(0) == 0`).
const SUM_HASH_SALT: u64 = 0x7a31_9c04_d6e8_5b2f;
const NEEDLE_HASH_SALT: u64 = 0x2fd8_44b1_03c7_96e5;

/// A depth × width decision table: at step `k` the player picks a column
/// `c` and earns `values[k][c]`. The optimum is the sum of row maxima —
/// computable in closed form, while random play is mediocre, which gives
/// search quality something measurable to improve.
#[derive(Debug, Clone)]
pub struct SumGame {
    values: std::sync::Arc<Vec<Vec<Score>>>,
    taken: Vec<u8>,
    accumulated: Score,
}

impl SumGame {
    /// Builds a game with the given value table (each row non-empty, width
    /// at most 256).
    pub fn new(values: Vec<Vec<Score>>) -> Self {
        assert!(values.iter().all(|row| !row.is_empty() && row.len() <= 256));
        Self {
            values: std::sync::Arc::new(values),
            taken: Vec::new(),
            accumulated: 0,
        }
    }

    /// A pseudo-random instance with values in `[0, 100)`.
    pub fn random(depth: usize, width: usize, seed: u64) -> Self {
        let mut rng = Rng::seeded(seed);
        let values = (0..depth)
            .map(|_| (0..width).map(|_| rng.below(100) as Score).collect())
            .collect();
        Self::new(values)
    }

    /// The maximum achievable score (sum of row maxima).
    pub fn optimum(&self) -> Score {
        self.values
            .iter()
            .map(|row| *row.iter().max().expect("non-empty row"))
            .sum()
    }

    /// Game depth.
    pub fn depth(&self) -> usize {
        self.values.len()
    }
}

impl CodedGame for SumGame {
    /// Codes are (depth, column): every decision point is distinct.
    fn move_code(&self, mv: &u8) -> u64 {
        ((self.taken.len() as u64) << 8) | *mv as u64
    }
}

impl Game for SumGame {
    type Move = u8;

    fn legal_moves(&self, out: &mut Vec<u8>) {
        if let Some(row) = self.values.get(self.taken.len()) {
            out.extend((0..row.len()).map(|c| c as u8));
        }
    }

    fn play(&mut self, mv: &u8) {
        let row = &self.values[self.taken.len()];
        self.accumulated += row[*mv as usize];
        self.taken.push(*mv);
    }

    fn score(&self) -> Score {
        self.accumulated
    }

    fn moves_played(&self) -> usize {
        self.taken.len()
    }

    fn is_terminal(&self) -> bool {
        self.taken.len() >= self.values.len()
    }

    /// The taken prefix *is* the position, so a sequential fold over it
    /// (plus the accumulated score) is an exact identity, allocation-free.
    // nmcs-lint: hot-entry
    fn state_hash(&self) -> u64 {
        let mut h = SUM_HASH_SALT;
        for &m in &self.taken {
            h = mix64(h ^ (m as u64 + 1));
        }
        mix64(h ^ self.accumulated as u64)
    }

    // Scratch-state fast path: a move is one pushed column, so undo pops
    // it and subtracts the value it earned.

    fn supports_undo(&self) -> bool {
        true
    }

    // nmcs-lint: hot-entry
    fn apply(&mut self, mv: &u8) -> Undo<Self> {
        self.play(mv);
        Undo::internal()
    }

    // nmcs-lint: hot-entry
    fn undo(&mut self, token: Undo<Self>) {
        debug_assert!(token.is_internal());
        let mv = self.taken.pop().expect("undo without apply");
        self.accumulated -= self.values[self.taken.len()][mv as usize];
    }
}

/// The needle-ladder game: a prize of `2 × depth` sits at the unique
/// all-ones leaf, plus one point of partial credit per leading `1`.
///
/// Flat Monte-Carlo must *sample* the needle (probability `2^-depth` per
/// playout), whereas a level-1 NMCS climbs the partial-credit gradient one
/// step at a time and finds it deterministically for any depth. This is
/// the mechanism behind "nested search amplifies Monte-Carlo" (paper §I),
/// in miniature, and the basis of a workspace-wide validation test.
#[derive(Debug, Clone)]
pub struct NeedleLadder {
    depth: usize,
    taken: Vec<u8>,
}

impl NeedleLadder {
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 2);
        Self {
            depth,
            taken: Vec::new(),
        }
    }

    /// Score of the unique optimal (all-ones) game.
    pub fn optimum(&self) -> Score {
        3 * self.depth as Score
    }
}

impl CodedGame for NeedleLadder {
    fn move_code(&self, mv: &u8) -> u64 {
        ((self.taken.len() as u64) << 1) | *mv as u64
    }
}

impl Game for NeedleLadder {
    type Move = u8;

    fn legal_moves(&self, out: &mut Vec<u8>) {
        if self.taken.len() < self.depth {
            out.extend_from_slice(&[0, 1]);
        }
    }

    fn play(&mut self, mv: &u8) {
        self.taken.push(*mv);
    }

    fn score(&self) -> Score {
        let leading_ones = self.taken.iter().take_while(|&&m| m == 1).count() as Score;
        let complete = self.taken.len() == self.depth && self.taken.iter().all(|&m| m == 1);
        leading_ones + if complete { 2 * self.depth as Score } else { 0 }
    }

    fn moves_played(&self) -> usize {
        self.taken.len()
    }

    fn is_terminal(&self) -> bool {
        self.taken.len() >= self.depth
    }

    /// The taken prefix is the whole position; fold it.
    // nmcs-lint: hot-entry
    fn state_hash(&self) -> u64 {
        let mut h = NEEDLE_HASH_SALT;
        for &m in &self.taken {
            h = mix64(h ^ (m as u64 + 1));
        }
        h
    }

    // Scratch-state fast path: the score is derived from `taken`, so
    // undo is a plain pop.

    fn supports_undo(&self) -> bool {
        true
    }

    // nmcs-lint: hot-entry
    fn apply(&mut self, mv: &u8) -> Undo<Self> {
        self.play(mv);
        Undo::internal()
    }

    // nmcs-lint: hot-entry
    fn undo(&mut self, token: Undo<Self>) {
        debug_assert!(token.is_internal());
        self.taken.pop().expect("undo without apply");
    }
}

// The unit tests exercise the deprecated shims on purpose (legacy-
// surface regression net; the unified API has its own coverage).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::{baselines::flat_monte_carlo, nested, NestedConfig};

    #[test]
    fn sum_game_optimum_is_reachable_by_exhaustive_play() {
        let g = SumGame::new(vec![vec![3, 1], vec![0, 7], vec![5, 5]]);
        assert_eq!(g.optimum(), 15);
        let mut best = Score::MIN;
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..2u8 {
                    let mut game = g.clone();
                    game.play(&a);
                    game.play(&b);
                    game.play(&c);
                    best = best.max(game.score());
                }
            }
        }
        assert_eq!(best, 15);
    }

    #[test]
    fn nmcs_level3_solves_random_sum_games() {
        for seed in 0..5 {
            let g = SumGame::random(5, 3, seed);
            let r = nested(&g, 3, &NestedConfig::paper(), &mut Rng::seeded(seed + 100));
            assert_eq!(r.score, g.optimum(), "seed {seed}");
        }
    }

    #[test]
    fn nmcs_level2_near_optimal_on_wider_games() {
        // Level 2 is not exhaustive; it should still land within a few
        // percent of the optimum on modest instances.
        for seed in 0..5 {
            let g = SumGame::random(6, 4, seed);
            let r = nested(&g, 2, &NestedConfig::paper(), &mut Rng::seeded(seed + 100));
            let opt = g.optimum();
            assert!(
                r.score as f64 >= 0.85 * opt as f64,
                "seed {seed}: {} vs optimum {opt}",
                r.score
            );
        }
    }

    #[test]
    fn sum_game_terminal_state_consistent() {
        let mut g = SumGame::random(3, 3, 9);
        assert!(!g.is_terminal());
        for _ in 0..3 {
            g.play(&0);
        }
        assert!(g.is_terminal());
        let mut buf = Vec::new();
        g.legal_moves(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn needle_ladder_fools_flat_mc_but_not_nested() {
        let depth = 10;
        let g = NeedleLadder::new(depth);
        let trials = 20;
        // Flat MC gets the same order of playout budget a level-1 NMCS
        // spends on this game (depth × 2 children ≈ 20, doubled for
        // generosity).
        let budget = 40;

        let mut flat_wins = 0;
        let mut nmcs_wins = 0;
        for seed in 0..trials {
            let flat = flat_monte_carlo(&g, budget, &mut Rng::seeded(seed));
            if flat.score == g.optimum() {
                flat_wins += 1;
            }
            let nm = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
            if nm.score == g.optimum() {
                nmcs_wins += 1;
            }
        }
        assert_eq!(nmcs_wins, trials, "level 1 climbs the ladder every time");
        assert!(
            flat_wins < trials / 2,
            "flat MC should rarely sample the 2^-10 needle, got {flat_wins}/{trials}"
        );
    }

    #[test]
    fn needle_ladder_score_definition() {
        let mut g = NeedleLadder::new(4);
        for _ in 0..4 {
            g.play(&1);
        }
        assert_eq!(g.score(), 12);
        assert_eq!(g.score(), g.optimum());
        let mut g2 = NeedleLadder::new(4);
        g2.play(&1);
        g2.play(&0);
        g2.play(&1);
        g2.play(&1);
        assert_eq!(g2.score(), 1, "one leading 1, no bonus");
    }
}
