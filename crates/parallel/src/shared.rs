//! Shared-memory parallel NMCS (ablation A3).
//!
//! The paper distributes work across machines; on a single multi-core
//! machine the same per-move evaluation loop can be parallelised with a
//! worker pool and no message passing. This module implements *root-level
//! leaf parallelism*: at each step of the top-level game, the candidate
//! evaluations (complete `level − 1` searches) run concurrently on a pool
//! of scoped threads fed by a crossbeam channel.
//!
//! Results are identical to the sequential greedy search with the same
//! seed derivation (the agreement test asserts it); only wall-clock time
//! changes. This is the natural "rayon-style" contrast configuration for
//! the cluster algorithms.

use crate::seeds::median_seed;
use crate::trace::{ParallelOutcome, RunMode};
use crossbeam::channel::unbounded;
use nmcs_core::metrics::monotonic_now;
use nmcs_core::{nested_with, Game, NestedConfig, Rng, Score, SearchCtx};
use std::time::Duration;

/// Configuration for [`par_nested`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Search level of the top-level game (≥ 1). Each candidate move is
    /// evaluated with a `level − 1` search.
    pub level: u32,
    /// Worker threads.
    pub threads: usize,
    pub seed: u64,
    pub mode: RunMode,
    pub playout_cap: Option<usize>,
}

impl PoolConfig {
    pub fn new(level: u32, threads: usize) -> Self {
        Self {
            level,
            threads,
            seed: 0,
            mode: RunMode::FullGame,
            playout_cap: None,
        }
    }
}

/// Runs a top-level greedy NMCS whose per-move evaluations execute on a
/// worker pool. Returns the outcome and the wall-clock duration.
pub fn par_nested<G>(game: &G, config: &PoolConfig) -> (ParallelOutcome<G::Move>, Duration)
where
    G: Game + Send,
    G::Move: Send,
{
    assert!(config.level >= 1, "par_nested needs level >= 1");
    assert!(config.threads >= 1);
    let eval_level = config.level - 1;
    let nconfig = NestedConfig {
        playout_cap: config.playout_cap,
        ..NestedConfig::paper()
    };

    let started = monotonic_now();
    let mut pos = game.clone();
    let mut sequence = Vec::new();
    let mut total_work = 0u64;
    let mut client_jobs = 0u64;
    let mut first_step_best: Option<Score> = None;
    let mut moves: Vec<G::Move> = Vec::new();
    let mut step = 0usize;

    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }

        // Fan the evaluations out over a scoped pool.
        let (job_tx, job_rx) = unbounded::<(usize, G)>();
        let (res_tx, res_rx) = unbounded::<(usize, Score, u64)>();
        for (i, mv) in moves.iter().enumerate() {
            let mut child = pos.clone();
            child.play(mv);
            job_tx.send((i, child)).expect("queue open");
        }
        drop(job_tx);

        crossbeam::scope(|scope| {
            for _ in 0..config.threads.min(moves.len()) {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let nconfig = &nconfig;
                let seed = config.seed;
                scope.spawn(move |_| {
                    let mut ctx = SearchCtx::unbounded();
                    while let Ok((i, child)) = job_rx.recv() {
                        let mut rng = Rng::seeded(median_seed(seed, step, i));
                        let before = ctx.stats().work_units;
                        let (score, _) =
                            nested_with(&child, eval_level, nconfig, &mut rng, &mut ctx);
                        res_tx
                            .send((i, score, ctx.stats().work_units - before))
                            .expect("result channel open");
                    }
                });
            }
        })
        .expect("pool workers do not panic");
        drop(res_tx);

        let mut best: Option<(Score, usize)> = None;
        for (i, score, work) in res_rx.iter() {
            total_work += work;
            client_jobs += 1;
            if best.is_none_or(|(bs, bj)| score > bs || (score == bs && i < bj)) {
                best = Some((score, i));
            }
        }
        let (best_score, best_idx) = best.expect("non-empty move list");
        if step == 0 {
            first_step_best = Some(best_score);
        }
        sequence.push(moves[best_idx].clone());
        pos.play(&moves[best_idx]);
        step += 1;
        if config.mode == RunMode::FirstMove {
            break;
        }
    }

    let score = match config.mode {
        RunMode::FirstMove => first_step_best.unwrap_or_else(|| pos.score()),
        RunMode::FullGame => pos.score(),
    };
    (
        ParallelOutcome {
            score,
            sequence,
            total_work,
            client_jobs,
        },
        started.elapsed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_games::{NeedleLadder, SumGame};

    #[test]
    fn thread_count_does_not_change_results() {
        let g = SumGame::random(6, 4, 5);
        let mut reference: Option<ParallelOutcome<u8>> = None;
        for threads in [1, 2, 4] {
            let mut cfg = PoolConfig::new(2, threads);
            cfg.seed = 9;
            let (out, _) = par_nested(&g, &cfg);
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    assert_eq!(out.score, r.score, "{threads} threads");
                    assert_eq!(out.sequence, r.sequence, "{threads} threads");
                    assert_eq!(out.total_work, r.total_work, "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn solves_needle_ladder() {
        let g = NeedleLadder::new(10);
        let (out, _) = par_nested(&g, &PoolConfig::new(2, 2));
        assert_eq!(out.score, g.optimum());
    }

    #[test]
    fn level_1_evaluates_with_playouts() {
        let g = SumGame::random(5, 3, 2);
        let (out, _) = par_nested(&g, &PoolConfig::new(1, 2));
        assert_eq!(out.sequence.len(), 5);
        assert_eq!(out.client_jobs, 15, "3 evals per step × 5 steps");
    }

    #[test]
    fn first_move_mode_stops_early() {
        let g = SumGame::random(5, 3, 2);
        let mut cfg = PoolConfig::new(2, 2);
        cfg.mode = RunMode::FirstMove;
        let (out, _) = par_nested(&g, &cfg);
        assert_eq!(out.sequence.len(), 1);
    }
}
