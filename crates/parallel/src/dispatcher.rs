//! The dispatcher state machine (paper §IV-A and §IV-B).
//!
//! Implemented once as a pure, time-free state machine so the threaded
//! runtime and the discrete-event simulator drive *exactly* the same
//! logic — the cross-backend agreement tests depend on this.
//!
//! * **Round-Robin** hands clients out cyclically, "always in the same
//!   order", blind to load. Requests never wait, but jobs can pile up in a
//!   busy (or slow) client's mailbox while other clients idle.
//! * **Last-Minute** keeps a list of free clients and a list of pending
//!   jobs ordered by expected remaining computation time, estimated by the
//!   number of moves already played: *fewer* moves played means a longer
//!   remaining game, so such jobs are served first when a client frees up.
//!
//! Two ablation orderings quantify how much the longest-first heuristic
//! matters: FIFO and shortest-first.

use cluster_rt::Rank;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Client-assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Paper §IV-A: cyclic, load-blind.
    RoundRobin,
    /// Paper §IV-B: free-list + pending queue, longest job first.
    LastMinute,
    /// Ablation: Last-Minute machinery with FIFO job ordering.
    LastMinuteFifo,
    /// Ablation: Last-Minute machinery serving *shortest* jobs first.
    LastMinuteShortest,
}

impl DispatchPolicy {
    /// Whether clients notify the dispatcher when they become free
    /// (Figure 4's (c') message exists only in the Last-Minute family).
    pub fn uses_free_list(self) -> bool {
        !matches!(self, DispatchPolicy::RoundRobin)
    }

    /// Short name used in reports ("RR" / "LM" …).
    pub fn short_name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "RR",
            DispatchPolicy::LastMinute => "LM",
            DispatchPolicy::LastMinuteFifo => "LM-FIFO",
            DispatchPolicy::LastMinuteShortest => "LM-SJF",
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A queued request waiting for a client (Last-Minute only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingJob {
    median: Rank,
    moves_played: usize,
    seq: u64,
}

/// The dispatcher's decision logic, shared by all backends.
#[derive(Debug, Clone)]
pub struct DispatcherCore {
    policy: DispatchPolicy,
    clients: Vec<Rank>,
    rr_next: usize,
    free: VecDeque<Rank>,
    jobs: Vec<PendingJob>,
    seq: u64,
}

impl DispatcherCore {
    /// Creates a dispatcher over the given client ranks. In the
    /// Last-Minute family every client starts on the free list (paper
    /// pseudocode line 1).
    pub fn new(policy: DispatchPolicy, clients: Vec<Rank>) -> Self {
        assert!(!clients.is_empty(), "dispatcher needs clients");
        let free: VecDeque<Rank> = if policy.uses_free_list() {
            clients.iter().copied().collect()
        } else {
            VecDeque::new()
        };
        Self {
            policy,
            clients,
            rr_next: 0,
            free,
            jobs: Vec::new(),
            seq: 0,
        }
    }

    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// A median asks for a client for a job whose position has
    /// `moves_played` moves. Returns the client to use, or `None` if the
    /// request was queued (Last-Minute with no free client).
    pub fn on_request(&mut self, median: Rank, moves_played: usize) -> Option<Rank> {
        match self.policy {
            DispatchPolicy::RoundRobin => {
                // "It simply sends back clients one after another, always
                // in the same order."
                let client = self.clients[self.rr_next];
                self.rr_next = (self.rr_next + 1) % self.clients.len();
                Some(client)
            }
            _ => {
                // "Client = first element of listFreeClients" — FIFO.
                if let Some(client) = self.free.pop_front() {
                    Some(client)
                } else {
                    self.jobs.push(PendingJob {
                        median,
                        moves_played,
                        seq: self.seq,
                    });
                    self.seq += 1;
                    None
                }
            }
        }
    }

    /// A client announces it is free. Returns `Some((median, client))` if
    /// a pending job should now be served (send `UseClient{client}` to
    /// `median`), or `None` if the client was parked on the free list.
    ///
    /// No-op under Round-Robin (clients do not notify).
    pub fn on_client_free(&mut self, client: Rank) -> Option<(Rank, Rank)> {
        if !self.policy.uses_free_list() {
            return None;
        }
        if self.jobs.is_empty() {
            self.free.push_back(client);
            return None;
        }
        let idx = match self.policy {
            // "Find j in jobs with the smallest number of moves" — the
            // longest expected job. Ties: oldest first.
            DispatchPolicy::LastMinute => self
                .jobs
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.moves_played, j.seq))
                .map(|(i, _)| i)
                .expect("jobs non-empty"),
            DispatchPolicy::LastMinuteFifo => self
                .jobs
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| j.seq)
                .map(|(i, _)| i)
                .expect("jobs non-empty"),
            DispatchPolicy::LastMinuteShortest => self
                .jobs
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (std::cmp::Reverse(j.moves_played), j.seq))
                .map(|(i, _)| i)
                .expect("jobs non-empty"),
            DispatchPolicy::RoundRobin => unreachable!(),
        };
        let job = self.jobs.swap_remove(idx);
        Some((job.median, client))
    }

    /// Number of jobs waiting for a client.
    pub fn pending_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of clients on the free list.
    pub fn free_clients(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_in_fixed_order() {
        let mut d = DispatcherCore::new(DispatchPolicy::RoundRobin, vec![10, 11, 12]);
        let picks: Vec<Rank> = (0..7).map(|i| d.on_request(2, i).unwrap()).collect();
        assert_eq!(picks, vec![10, 11, 12, 10, 11, 12, 10]);
        assert_eq!(d.pending_jobs(), 0);
    }

    #[test]
    fn round_robin_ignores_free_notifications() {
        let mut d = DispatcherCore::new(DispatchPolicy::RoundRobin, vec![10, 11]);
        assert_eq!(d.on_client_free(10), None);
        assert_eq!(d.free_clients(), 0);
    }

    #[test]
    fn last_minute_serves_from_free_list_then_queues() {
        let mut d = DispatcherCore::new(DispatchPolicy::LastMinute, vec![10, 11]);
        assert!(d.on_request(2, 0).is_some());
        assert!(d.on_request(3, 5).is_some());
        assert_eq!(d.free_clients(), 0);
        // Third request has nobody free: queued.
        assert_eq!(d.on_request(4, 2), None);
        assert_eq!(d.pending_jobs(), 1);
    }

    #[test]
    fn last_minute_gives_freed_client_to_longest_job() {
        let mut d = DispatcherCore::new(DispatchPolicy::LastMinute, vec![10]);
        let _ = d.on_request(2, 0); // takes the only client
        assert_eq!(d.on_request(3, 30), None); // short job (late game)
        assert_eq!(d.on_request(4, 5), None); // long job (early game)
        assert_eq!(d.on_request(5, 12), None);
        // Client frees: the job with the FEWEST moves played (longest
        // remaining) is served first — median 4.
        assert_eq!(d.on_client_free(10), Some((4, 10)));
        assert_eq!(d.on_client_free(10), Some((5, 10)));
        assert_eq!(d.on_client_free(10), Some((3, 10)));
        // Nothing pending: client parks on the free list.
        assert_eq!(d.on_client_free(10), None);
        assert_eq!(d.free_clients(), 1);
        // Next request is served immediately from the free list.
        assert_eq!(d.on_request(6, 1), Some(10));
    }

    #[test]
    fn fifo_ablation_serves_in_arrival_order() {
        let mut d = DispatcherCore::new(DispatchPolicy::LastMinuteFifo, vec![10]);
        let _ = d.on_request(2, 0);
        assert_eq!(d.on_request(3, 30), None);
        assert_eq!(d.on_request(4, 5), None);
        assert_eq!(d.on_client_free(10), Some((3, 10)));
        assert_eq!(d.on_client_free(10), Some((4, 10)));
    }

    #[test]
    fn shortest_ablation_serves_latest_game_first() {
        let mut d = DispatcherCore::new(DispatchPolicy::LastMinuteShortest, vec![10]);
        let _ = d.on_request(2, 0);
        assert_eq!(d.on_request(3, 30), None);
        assert_eq!(d.on_request(4, 5), None);
        assert_eq!(d.on_client_free(10), Some((3, 10)));
    }

    #[test]
    fn tie_break_is_submission_order() {
        let mut d = DispatcherCore::new(DispatchPolicy::LastMinute, vec![10]);
        let _ = d.on_request(2, 0);
        assert_eq!(d.on_request(7, 4), None);
        assert_eq!(d.on_request(8, 4), None);
        assert_eq!(d.on_client_free(10), Some((7, 10)), "equal sizes: FIFO");
    }

    #[test]
    fn policy_metadata() {
        assert!(!DispatchPolicy::RoundRobin.uses_free_list());
        assert!(DispatchPolicy::LastMinute.uses_free_list());
        assert_eq!(DispatchPolicy::LastMinute.to_string(), "LM");
        assert_eq!(DispatchPolicy::RoundRobin.to_string(), "RR");
    }
}
