//! Job traces and the sequential reference implementation of the
//! parallel algorithm (paper §IV).
//!
//! The parallel search's *decisions* are scheduling-independent (seeds fix
//! every score), so one sequential execution can record the full fork-join
//! job structure — which client jobs exist, how much work each needs, and
//! which barriers separate them. The discrete-event simulator then replays
//! that [`SearchTrace`] under any cluster shape and dispatch policy in
//! milliseconds, which is how the paper's 64-client tables are regenerated
//! without a cluster.
//!
//! Structure of a trace (matching the three process tiers):
//!
//! ```text
//! SearchTrace
//! └─ steps: Vec<RootStepTrace>          (one per root game step)
//!    └─ medians: Vec<MedianTrace>       (one per root candidate move)
//!       └─ steps: Vec<MedianStepTrace>  (one per median game step)
//!          └─ jobs: Vec<ClientJob>      (one per median candidate move)
//! ```
//!
//! Within a median, step `t+1`'s jobs may only start after all of step
//! `t`'s results returned (the median's collection barrier). Within the
//! root, step `s+1`'s medians may only start after all of step `s`'s
//! medians finished (the root's collection barrier).

use crate::seeds::{client_seed, median_seed};
use nmcs_core::{nested_with, Game, NestedConfig, Rng, Score, SearchCtx};
use serde::{Deserialize, Serialize};

/// What the root process plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// Play only the first move of the game (Tables I–II, IV, VI).
    FirstMove,
    /// Play an entire game — "one rollout" (Tables I, III, V).
    FullGame,
}

/// One client evaluation job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientJob {
    /// Work units the job needs (measured by the instrumented search).
    pub demand: u64,
    /// Moves already played in the position the client receives — the
    /// Last-Minute dispatcher's expected-remaining-time estimate.
    pub moves_played: u64,
    /// The score the job returns (recorded for validation; timing replay
    /// does not need it).
    pub score: Score,
}

/// One step of a median game: one job per candidate move, then a barrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MedianStepTrace {
    pub jobs: Vec<ClientJob>,
}

/// One median process's whole game for one root candidate move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MedianTrace {
    pub steps: Vec<MedianStepTrace>,
    /// Final score the median reports to the root.
    pub result_score: Score,
}

/// One root step: one median game per root candidate move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootStepTrace {
    pub medians: Vec<MedianTrace>,
}

/// The complete fork-join structure of one parallel search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Root search level (clients run `level - 2`).
    pub level: u32,
    pub seed: u64,
    pub mode: RunMode,
    pub steps: Vec<RootStepTrace>,
    /// Final score of the root game (FirstMove: best step-0 evaluation).
    pub score: Score,
    /// Total client work units (the sequential-execution cost).
    pub total_work: u64,
    /// Total number of client jobs.
    pub client_jobs: u64,
}

impl SearchTrace {
    /// Largest number of simultaneously-outstanding client jobs possible
    /// (sum over a root step's medians of their per-step maxima is an
    /// upper bound; this returns the max over root steps of the sum of
    /// first-step widths, a good saturation indicator).
    pub fn peak_parallelism(&self) -> usize {
        self.steps
            .iter()
            .map(|s| {
                s.medians
                    .iter()
                    .map(|m| m.steps.first().map_or(0, |st| st.jobs.len()))
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}

/// Result of a parallel search (scores and moves; timing comes from the
/// backends).
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelOutcome<Mv> {
    pub score: Score,
    /// Moves played by the root (one entry in FirstMove mode).
    pub sequence: Vec<Mv>,
    pub total_work: u64,
    pub client_jobs: u64,
}

/// Runs the parallel algorithm's logic sequentially, recording the trace.
///
/// Level must be ≥ 2 (the paper's hierarchy needs a root level, a median
/// level below it, and clients running `level − 2`; level 3 and 4 are the
/// paper's settings).
pub fn run_reference<G: Game>(
    game: &G,
    level: u32,
    seed: u64,
    mode: RunMode,
    playout_cap: Option<usize>,
) -> (ParallelOutcome<G::Move>, SearchTrace) {
    assert!(level >= 2, "parallel NMCS needs level >= 2, got {level}");
    let config = NestedConfig {
        playout_cap,
        ..NestedConfig::paper()
    };
    let client_level = level - 2;

    let mut root_pos = game.clone();
    let mut sequence = Vec::new();
    let mut steps = Vec::new();
    let mut total_work = 0u64;
    let mut client_jobs = 0u64;
    let mut first_step_best: Option<Score> = None;

    let mut moves: Vec<G::Move> = Vec::new();
    let mut root_step = 0usize;
    loop {
        moves.clear();
        root_pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        let mut medians = Vec::with_capacity(moves.len());
        let mut best: Option<(Score, usize)> = None;
        for (i, mv) in moves.iter().enumerate() {
            let mut child = root_pos.clone();
            child.play(mv);
            let mseed = median_seed(seed, root_step, i);
            let mtrace = run_median_game(
                &child,
                client_level,
                mseed,
                &config,
                &mut total_work,
                &mut client_jobs,
            );
            let s = mtrace.result_score;
            if best.is_none_or(|(bs, bj)| s > bs || (s == bs && i < bj)) {
                best = Some((s, i));
            }
            medians.push(mtrace);
        }
        steps.push(RootStepTrace { medians });
        let (best_score, best_idx) = best.expect("non-empty move list");
        if root_step == 0 {
            first_step_best = Some(best_score);
        }
        sequence.push(moves[best_idx].clone());
        root_pos.play(&moves[best_idx]);
        root_step += 1;
        if mode == RunMode::FirstMove {
            break;
        }
    }

    let score = match mode {
        RunMode::FirstMove => first_step_best.unwrap_or_else(|| root_pos.score()),
        RunMode::FullGame => root_pos.score(),
    };
    let outcome = ParallelOutcome {
        score,
        sequence,
        total_work,
        client_jobs,
    };
    let trace = SearchTrace {
        level,
        seed,
        mode,
        steps,
        score,
        total_work,
        client_jobs,
    };
    (outcome, trace)
}

/// Plays one median game (greedy per-step argmax over client-job scores,
/// per the paper's median pseudocode) and records its job structure.
fn run_median_game<G: Game>(
    start: &G,
    client_level: u32,
    mseed: u64,
    config: &NestedConfig,
    total_work: &mut u64,
    client_jobs: &mut u64,
) -> MedianTrace {
    let mut pos = start.clone();
    let mut steps = Vec::new();
    let mut moves: Vec<G::Move> = Vec::new();
    let mut mstep = 0usize;
    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        let mut jobs = Vec::with_capacity(moves.len());
        let mut best: Option<(Score, usize)> = None;
        for (j, mv) in moves.iter().enumerate() {
            let mut child = pos.clone();
            child.play(mv);
            let seed = client_seed(mseed, mstep, j);
            let mut ctx = SearchCtx::unbounded();
            let (score, _) = nested_with(
                &child,
                client_level,
                config,
                &mut Rng::seeded(seed),
                &mut ctx,
            );
            let work = ctx.stats().work_units;
            *total_work += work;
            *client_jobs += 1;
            jobs.push(ClientJob {
                demand: work,
                moves_played: child.moves_played() as u64,
                score,
            });
            if best.is_none_or(|(bs, bj)| score > bs || (score == bs && j < bj)) {
                best = Some((score, j));
            }
        }
        steps.push(MedianStepTrace { jobs });
        let (_, best_idx) = best.expect("non-empty move list");
        pos.play(&moves[best_idx]);
        mstep += 1;
    }
    MedianTrace {
        steps,
        result_score: pos.score(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_games::{NeedleLadder, SumGame};

    #[test]
    fn reference_solves_needle_ladder_exactly() {
        // Greedy per-step argmax climbs the ladder deterministically at
        // every level >= 2 (playout partial credit orders the children).
        let g = NeedleLadder::new(10);
        for level in [2, 3] {
            let (out, _) = run_reference(&g, level, 1, RunMode::FullGame, None);
            assert_eq!(out.score, g.optimum(), "level {level}");
        }
    }

    #[test]
    fn reference_near_optimal_on_sum_game_at_level_2() {
        // The parallel hierarchy is greedy at every level (paper §IV
        // pseudocode), so it is weaker than the memorised sequential NMCS;
        // near-optimality is the right expectation here.
        let g = SumGame::random(5, 3, 11);
        let (out, trace) = run_reference(&g, 2, 99, RunMode::FullGame, None);
        assert!(
            out.score as f64 >= 0.9 * g.optimum() as f64,
            "greedy level-2 reference too weak: {} vs {}",
            out.score,
            g.optimum()
        );
        assert_eq!(out.sequence.len(), 5);
        assert_eq!(trace.steps.len(), 5);
        assert_eq!(trace.score, out.score);
        assert!(trace.total_work > 0);
        assert_eq!(trace.client_jobs as usize, count_jobs(&trace));
    }

    fn count_jobs(trace: &SearchTrace) -> usize {
        trace
            .steps
            .iter()
            .flat_map(|s| &s.medians)
            .flat_map(|m| &m.steps)
            .map(|st| st.jobs.len())
            .sum()
    }

    #[test]
    fn first_move_mode_stops_after_one_step() {
        let g = SumGame::random(6, 3, 4);
        let (out, trace) = run_reference(&g, 2, 1, RunMode::FirstMove, None);
        assert_eq!(out.sequence.len(), 1);
        assert_eq!(trace.steps.len(), 1);
        // One median per candidate move of the initial position.
        assert_eq!(trace.steps[0].medians.len(), 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = SumGame::random(4, 3, 8);
        let (a_out, a_tr) = run_reference(&g, 2, 5, RunMode::FullGame, None);
        let (b_out, b_tr) = run_reference(&g, 2, 5, RunMode::FullGame, None);
        assert_eq!(a_out, b_out);
        assert_eq!(a_tr, b_tr);
    }

    #[test]
    fn different_seeds_may_change_work_but_not_validity() {
        let g = SumGame::random(4, 3, 8);
        let (a, _) = run_reference(&g, 2, 5, RunMode::FullGame, None);
        let (b, _) = run_reference(&g, 2, 6, RunMode::FullGame, None);
        // Scores may differ, sequences must be full games.
        assert_eq!(a.sequence.len(), 4);
        assert_eq!(b.sequence.len(), 4);
    }

    #[test]
    fn median_moves_played_hints_increase_within_a_game() {
        let g = SumGame::random(5, 2, 3);
        let (_, trace) = run_reference(&g, 2, 7, RunMode::FirstMove, None);
        for m in &trace.steps[0].medians {
            let hints: Vec<u64> = m
                .steps
                .iter()
                .flat_map(|s| s.jobs.iter().map(|j| j.moves_played))
                .collect();
            // Within one median game, later steps evaluate deeper
            // positions.
            let mut per_step: Vec<u64> = m
                .steps
                .iter()
                .map(|s| s.jobs.first().map(|j| j.moves_played).unwrap_or(0))
                .collect();
            let sorted = {
                let mut v = per_step.clone();
                v.sort_unstable();
                v
            };
            assert_eq!(per_step, sorted, "hints {hints:?}");
            per_step.dedup();
            assert_eq!(per_step.len(), m.steps.len(), "one depth per step");
        }
    }

    #[test]
    fn trace_serde_round_trip() {
        let g = SumGame::random(3, 2, 2);
        let (_, trace) = run_reference(&g, 2, 9, RunMode::FullGame, None);
        let json = serde_json::to_string(&trace).unwrap();
        let back: SearchTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn peak_parallelism_counts_first_step_widths() {
        let g = SumGame::random(4, 3, 1);
        let (_, trace) = run_reference(&g, 2, 3, RunMode::FirstMove, None);
        // 3 medians × 3 first-step jobs each.
        assert_eq!(trace.peak_parallelism(), 9);
    }

    #[test]
    #[should_panic(expected = "level >= 2")]
    fn level_below_two_rejected() {
        let g = SumGame::random(3, 2, 1);
        let _ = run_reference(&g, 1, 0, RunMode::FullGame, None);
    }
}
