//! The wire protocol between the four process roles (paper §IV, Figs 2–5).
//!
//! Rank layout in a world of `2 + M + C` processes:
//!
//! ```text
//! rank 0            root
//! rank 1            dispatcher
//! ranks 2 .. 2+M    median processes
//! ranks 2+M ..      client processes
//! ```
//!
//! The four communications of Figure 2 map to messages here:
//! (a) root → median  [`Msg::EvalRequest`]
//! (b) median → dispatcher [`Msg::WhichClient`], dispatcher → median
//!     [`Msg::UseClient`], median → client [`Msg::EvalRequest`]
//! (c) client → median [`Msg::EvalResult`] (and, Last-Minute only,
//!     client → dispatcher [`Msg::ClientFree`], Figure 4 (c'))
//! (d) median → root  [`Msg::EvalResult`]

use cluster_rt::{Rank, Tagged};
use nmcs_core::Score;

/// Messages exchanged by the parallel search processes.
#[derive(Debug, Clone)]
pub enum Msg<G, Mv> {
    /// Evaluate `position` with a search at `level`; all randomness must
    /// derive from `seed`. Root→median and median→client.
    EvalRequest {
        position: G,
        level: u32,
        seed: u64,
        /// Echoed back in the result so the requester can match
        /// out-of-order replies to moves.
        job: usize,
    },
    /// The result of an evaluation. Client→median and median→root.
    EvalResult {
        job: usize,
        score: Score,
        /// Continuation realising `score` (empty when only the score is
        /// needed, as in the paper's median→root reply).
        sequence: Vec<Mv>,
        /// Work units spent (drives the simulator's cost model and the
        /// experiment reports).
        work: u64,
        /// Number of client jobs this result aggregates (1 for a client's
        /// own reply; the job count of the whole median game for a
        /// median's reply to the root).
        jobs: u64,
    },
    /// Median asks the dispatcher for a client; carries the number of
    /// moves already played in the position to evaluate (the Last-Minute
    /// expected-time estimate, paper §IV-B).
    WhichClient { moves_played: usize },
    /// Dispatcher's reply: use this client.
    UseClient { client: Rank },
    /// A client informs the dispatcher it is free (Last-Minute only).
    ClientFree,
    /// Orderly termination.
    Shutdown,
}

impl<G, Mv> Tagged for Msg<G, Mv> {
    fn tag(&self) -> &'static str {
        match self {
            Msg::EvalRequest { .. } => "EvalRequest",
            Msg::EvalResult { .. } => "EvalResult",
            Msg::WhichClient { .. } => "WhichClient",
            Msg::UseClient { .. } => "UseClient",
            Msg::ClientFree => "ClientFree",
            Msg::Shutdown => "Shutdown",
        }
    }
}

/// Fixed ranks.
pub const ROOT: Rank = 0;
/// The dispatcher's rank.
pub const DISPATCHER: Rank = 1;
/// First median rank.
pub const FIRST_MEDIAN: Rank = 2;

/// Rank of median `i` in a world with `n_medians` medians.
pub const fn median_rank(i: usize) -> Rank {
    FIRST_MEDIAN + i
}

/// Rank of client `i` in a world with `n_medians` medians.
pub const fn client_rank(n_medians: usize, i: usize) -> Rank {
    FIRST_MEDIAN + n_medians + i
}

/// Inverse of [`client_rank`].
pub const fn client_index(n_medians: usize, rank: Rank) -> usize {
    rank - FIRST_MEDIAN - n_medians
}

/// Total world size for a given topology.
pub const fn world_size(n_medians: usize, n_clients: usize) -> usize {
    2 + n_medians + n_clients
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_layout_is_consistent() {
        let m = 5;
        let c = 8;
        assert_eq!(world_size(m, c), 15);
        assert_eq!(median_rank(0), 2);
        assert_eq!(median_rank(4), 6);
        assert_eq!(client_rank(m, 0), 7);
        assert_eq!(client_rank(m, 7), 14);
        for i in 0..c {
            assert_eq!(client_index(m, client_rank(m, i)), i);
        }
    }

    #[test]
    fn tags_name_each_message() {
        type M = Msg<(), ()>;
        let msgs: Vec<(M, &str)> = vec![
            (
                Msg::EvalRequest {
                    position: (),
                    level: 1,
                    seed: 0,
                    job: 0,
                },
                "EvalRequest",
            ),
            (
                Msg::EvalResult {
                    job: 0,
                    score: 0,
                    sequence: vec![],
                    work: 0,
                    jobs: 0,
                },
                "EvalResult",
            ),
            (Msg::WhichClient { moves_played: 3 }, "WhichClient"),
            (Msg::UseClient { client: 9 }, "UseClient"),
            (Msg::ClientFree, "ClientFree"),
            (Msg::Shutdown, "Shutdown"),
        ];
        for (m, tag) in msgs {
            assert_eq!(m.tag(), tag);
        }
    }
}
