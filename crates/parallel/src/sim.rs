//! The discrete-event backend: replays a [`SearchTrace`] on a simulated
//! cluster in virtual time.
//!
//! This is the substitution for the paper's 64-core cluster (see
//! DESIGN.md §2): the same dispatcher state machine as the threaded
//! backend ([`DispatcherCore`]), driven by virtual-time events instead of
//! real messages. All the latency structure of the real protocol is
//! modelled:
//!
//! * every message (ask, grant, position, result, free notice) costs one
//!   one-way latency;
//! * a median's job submissions are *serialized* — it cannot request a
//!   client for its next move before the dispatcher granted the previous
//!   one (the paper's median pseudocode blocks on `receive client from
//!   dispatcher`), which is precisely why Last-Minute throttles gracefully
//!   under saturation while Round-Robin floods busy clients' queues;
//! * medians of one root step start together; the next root step starts
//!   only after all of them reported (the root's barrier);
//! * a median advances to its next step only after all of its current
//!   step's results returned (the median's barrier).

use crate::dispatcher::{DispatchPolicy, DispatcherCore};
use crate::trace::SearchTrace;
use des_sim::{ClusterSpec, EventQueue, ServiceStation, SimStats, Time, Timeline};
use serde::{Deserialize, Serialize};

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Virtual time until the root held every result it needed.
    pub makespan: Time,
    pub policy: DispatchPolicy,
    pub n_clients: usize,
    pub stats: SimStats,
}

impl SimOutcome {
    /// Speedup relative to a reference single-client virtual time.
    pub fn speedup(&self, reference: Time) -> f64 {
        self.stats.speedup(reference)
    }
}

/// Identifies one median game within the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MedianId {
    root_step: usize,
    idx: usize,
}

/// Virtual-time events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The root's position arrived at a median: begin its game.
    MedianStart(MedianId),
    /// A median's `WhichClient` arrived at the dispatcher.
    AskArrive(MedianId),
    /// The dispatcher's `UseClient` grant arrived at a median.
    GrantArrive(MedianId, usize),
    /// A position arrived at client `usize` for job `job` of the median's
    /// current step.
    PositionArrive(MedianId, usize, usize),
    /// Client finished a job.
    JobDone(MedianId, usize, usize),
    /// The result arrived back at the median.
    ResultArrive(MedianId),
    /// A `ClientFree` notice arrived at the dispatcher.
    FreeArrive(usize),
}

/// Per-median replay state.
#[derive(Debug)]
struct MedState {
    /// Next job (move index) to request a client for, within the current
    /// step.
    next_job: usize,
    /// Results still outstanding in the current step.
    outstanding: usize,
    step: usize,
    done: bool,
}

/// Replays `trace` on `cluster` under `policy`, returning virtual-time
/// results.
///
/// Median ranks in the dispatcher core are synthetic (`root_step * width +
/// idx` would collide across steps, so an offset map is used); client
/// "ranks" are their indices.
pub fn simulate_trace(
    trace: &SearchTrace,
    cluster: &ClusterSpec,
    policy: DispatchPolicy,
) -> SimOutcome {
    simulate_trace_impl(trace, cluster, policy, false).0
}

/// Like [`simulate_trace`], additionally returning per-client busy
/// timelines for Gantt rendering (costs memory proportional to the job
/// count).
pub fn simulate_trace_recorded(
    trace: &SearchTrace,
    cluster: &ClusterSpec,
    policy: DispatchPolicy,
) -> (SimOutcome, Vec<Timeline>) {
    let (out, timelines) = simulate_trace_impl(trace, cluster, policy, true);
    (out, timelines.expect("recording requested"))
}

fn simulate_trace_impl(
    trace: &SearchTrace,
    cluster: &ClusterSpec,
    policy: DispatchPolicy,
    record: bool,
) -> (SimOutcome, Option<Vec<Timeline>>) {
    assert!(!cluster.is_empty());
    let lat = cluster.latency;
    let nspu = cluster.ns_per_unit;

    let mut stations: Vec<ServiceStation> = cluster
        .clients
        .iter()
        .map(|c| {
            if record {
                ServiceStation::new_recording(c.speed)
            } else {
                ServiceStation::new(c.speed)
            }
        })
        .collect();
    // The dispatcher core addresses clients by rank; use their indices.
    let mut core = DispatcherCore::new(policy, (0..stations.len()).collect());

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut makespan: Time = 0;

    // State per median of the *current* root step only (medians of
    // different steps never overlap in time).
    let mut med: Vec<MedState> = Vec::new();
    let mut medians_left = 0usize;

    // Maps a synthetic dispatcher rank to the median index (dispatcher
    // ranks must be stable across queued jobs within a step).
    let start_root_step = |step: usize,
                           now: Time,
                           queue: &mut EventQueue<Ev>,
                           med: &mut Vec<MedState>,
                           medians_left: &mut usize,
                           trace: &SearchTrace,
                           lat: Time| {
        let rs = &trace.steps[step];
        med.clear();
        for (idx, m) in rs.medians.iter().enumerate() {
            med.push(MedState {
                next_job: 0,
                outstanding: 0,
                step: 0,
                done: m.steps.is_empty(),
            });
            let id = MedianId {
                root_step: step,
                idx,
            };
            if m.steps.is_empty() {
                // Terminal child: the median replies immediately.
            } else {
                // Root's position reaches the median one latency after the
                // root sends it.
                queue.push(now + lat, Ev::MedianStart(id));
            }
        }
        *medians_left = rs.medians.iter().filter(|m| !m.steps.is_empty()).count();
    };

    let finish = |stations: Vec<ServiceStation>, makespan: Time, total_work: u64| {
        let stats = SimStats::collect(&stations, 1.max(makespan), total_work);
        let timelines = record.then(|| {
            stations
                .iter()
                .map(|s| s.timeline().cloned().unwrap_or_default())
                .collect::<Vec<_>>()
        });
        (
            SimOutcome {
                makespan,
                policy,
                n_clients: stations.len(),
                stats,
            },
            timelines,
        )
    };

    if trace.steps.is_empty() {
        return finish(stations, 0, 0);
    }
    // Starts root steps beginning at `step`, skipping over steps whose
    // medians are all trivially done (every child terminal — such a step
    // costs only message latency, which we conservatively omit). Returns
    // the step that actually started, or `None` if the trace is exhausted.
    let advance_until_live = |mut step: usize,
                              now: Time,
                              queue: &mut EventQueue<Ev>,
                              med: &mut Vec<MedState>,
                              medians_left: &mut usize|
     -> Option<usize> {
        while step < trace.steps.len() {
            start_root_step(step, now, queue, med, medians_left, trace, lat);
            if *medians_left > 0 {
                return Some(step);
            }
            step += 1;
        }
        None
    };
    let mut root_step = match advance_until_live(0, 0, &mut queue, &mut med, &mut medians_left) {
        Some(step) => step,
        None => return finish(stations, makespan, trace.total_work),
    };

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::MedianStart(id) => {
                // The median begins step 0: ask for a client for job 0.
                queue.push(now + lat, Ev::AskArrive(id));
            }
            Ev::AskArrive(id) => {
                let m = &med[id.idx];
                let job = &trace.steps[id.root_step].medians[id.idx].steps[m.step].jobs[m.next_job];
                // The dispatcher rank of a median is its index (unique
                // within the live root step).
                // `None` means the request queued inside the core
                // (Last-Minute with no free client).
                if let Some(client) = core.on_request(id.idx, job.moves_played as usize) {
                    queue.push(now + lat, Ev::GrantArrive(id, client));
                }
            }
            Ev::GrantArrive(id, client) => {
                let m = &mut med[id.idx];
                let job_idx = m.next_job;
                m.next_job += 1;
                m.outstanding += 1;
                // Send the position to the client …
                queue.push(now + lat, Ev::PositionArrive(id, client, job_idx));
                // … and immediately ask for the next job's client, if any.
                let njobs = trace.steps[id.root_step].medians[id.idx].steps[m.step]
                    .jobs
                    .len();
                if m.next_job < njobs {
                    queue.push(now + lat, Ev::AskArrive(id));
                }
            }
            Ev::PositionArrive(id, client, job_idx) => {
                let m = &med[id.idx];
                let job = &trace.steps[id.root_step].medians[id.idx].steps[m.step].jobs[job_idx];
                let done_at = stations[client].assign(now, job.demand, nspu);
                queue.push(done_at, Ev::JobDone(id, client, job_idx));
            }
            Ev::JobDone(id, client, _job_idx) => {
                queue.push(now + lat, Ev::ResultArrive(id));
                if policy.uses_free_list() {
                    queue.push(now + lat, Ev::FreeArrive(client));
                }
            }
            Ev::FreeArrive(client) => {
                if let Some((median_idx, client)) = core.on_client_free(client) {
                    let id = MedianId {
                        root_step,
                        idx: median_idx,
                    };
                    queue.push(now + lat, Ev::GrantArrive(id, client));
                }
            }
            Ev::ResultArrive(id) => {
                let mtrace = &trace.steps[id.root_step].medians[id.idx];
                let m = &mut med[id.idx];
                m.outstanding -= 1;
                let njobs = mtrace.steps[m.step].jobs.len();
                if m.outstanding == 0 && m.next_job >= njobs {
                    // Median barrier cleared: advance its game.
                    m.step += 1;
                    m.next_job = 0;
                    if m.step < mtrace.steps.len() {
                        queue.push(now + lat, Ev::AskArrive(id));
                    } else if !m.done {
                        m.done = true;
                        medians_left -= 1;
                        if medians_left == 0 {
                            // Root barrier: all medians reported (one
                            // latency for the median→root result).
                            let root_now = now + lat;
                            makespan = makespan.max(root_now);
                            if let Some(step) = advance_until_live(
                                root_step + 1,
                                root_now,
                                &mut queue,
                                &mut med,
                                &mut medians_left,
                            ) {
                                root_step = step;
                            }
                        }
                    }
                }
            }
        }
    }

    finish(stations, makespan, trace.total_work)
}

/// Simulates the paper's single-client reference: the same trace with one
/// speed-1.0 client and the same policy/latency (this is what the "1
/// client" rows of Tables II–V measure).
pub fn single_client_reference(trace: &SearchTrace, cluster: &ClusterSpec) -> Time {
    let single = ClusterSpec::homogeneous(1)
        .with_ns_per_unit(cluster.ns_per_unit)
        .with_latency(cluster.latency);
    simulate_trace(trace, &single, DispatchPolicy::RoundRobin).makespan
}

/// Convenience: run one trace over a sweep of homogeneous cluster sizes,
/// returning `(n_clients, outcome)` pairs — one table column.
pub fn sweep_cluster_sizes(
    trace: &SearchTrace,
    sizes: &[usize],
    base: &ClusterSpec,
    policy: DispatchPolicy,
) -> Vec<(usize, SimOutcome)> {
    sizes
        .iter()
        .map(|&n| {
            let cluster = ClusterSpec::homogeneous(n)
                .with_ns_per_unit(base.ns_per_unit)
                .with_latency(base.latency);
            (n, simulate_trace(trace, &cluster, policy))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{run_reference, RunMode};
    use nmcs_games::SumGame;

    fn small_trace(mode: RunMode) -> SearchTrace {
        let g = SumGame::random(5, 3, 11);
        let (_, trace) = run_reference(&g, 2, 99, mode, None);
        trace
    }

    #[test]
    fn more_clients_never_slower_much() {
        let trace = small_trace(RunMode::FullGame);
        let base = ClusterSpec::homogeneous(1);
        let results = sweep_cluster_sizes(&trace, &[1, 2, 4, 8], &base, DispatchPolicy::LastMinute);
        for w in results.windows(2) {
            let (n0, a) = &w[0];
            let (n1, b) = &w[1];
            assert!(
                b.makespan <= a.makespan,
                "{n1} clients ({}) should not be slower than {n0} ({})",
                b.makespan,
                a.makespan
            );
        }
    }

    #[test]
    fn speedup_is_bounded_by_parallelism_and_positive() {
        // Zero latency isolates compute: speedup must land in [1, n].
        let trace = small_trace(RunMode::FullGame);
        let base = ClusterSpec::homogeneous(1)
            .with_ns_per_unit(1e6)
            .with_latency(0);
        let single = single_client_reference(&trace, &base);
        let out = simulate_trace(
            &trace,
            &ClusterSpec::homogeneous(4)
                .with_ns_per_unit(1e6)
                .with_latency(0),
            DispatchPolicy::LastMinute,
        );
        let s = out.speedup(single);
        assert!(s >= 1.0, "speedup {s} must be at least 1");
        assert!(s <= 4.0 + 1e-9, "speedup {s} cannot exceed client count");
    }

    #[test]
    fn latency_erodes_speedup() {
        // The regime the latency-sensitivity ablation (A2) sweeps: with
        // job service times near the message latency, protocol round
        // trips eat part of the parallel gain.
        let trace = small_trace(RunMode::FullGame);
        let speedup_at = |nspu: f64| {
            let c1 = ClusterSpec::homogeneous(1).with_ns_per_unit(nspu);
            let c8 = ClusterSpec::homogeneous(8).with_ns_per_unit(nspu);
            let t1 = simulate_trace(&trace, &c1, DispatchPolicy::LastMinute).makespan;
            let t8 = simulate_trace(&trace, &c8, DispatchPolicy::LastMinute).makespan;
            t1 as f64 / t8 as f64
        };
        let tiny_jobs = speedup_at(1.0); // ~10ns jobs, 100us latency
        let big_jobs = speedup_at(1e6); // ~10ms jobs
        assert!(
            big_jobs > tiny_jobs,
            "compute-bound speedup {big_jobs} should beat latency-bound {tiny_jobs}"
        );
    }

    #[test]
    fn both_policies_complete_with_identical_total_work() {
        let trace = small_trace(RunMode::FullGame);
        let c = ClusterSpec::homogeneous(3);
        let rr = simulate_trace(&trace, &c, DispatchPolicy::RoundRobin);
        let lm = simulate_trace(&trace, &c, DispatchPolicy::LastMinute);
        assert_eq!(rr.stats.jobs, lm.stats.jobs);
        assert_eq!(rr.stats.jobs, trace.client_jobs);
        assert_eq!(rr.stats.total_work, lm.stats.total_work);
    }

    #[test]
    fn first_move_trace_simulates_faster_than_full_game() {
        let first = small_trace(RunMode::FirstMove);
        let full = small_trace(RunMode::FullGame);
        let c = ClusterSpec::homogeneous(4);
        let tf = simulate_trace(&first, &c, DispatchPolicy::LastMinute).makespan;
        let tg = simulate_trace(&full, &c, DispatchPolicy::LastMinute).makespan;
        assert!(tf < tg, "first move {tf} vs full game {tg}");
    }

    #[test]
    fn heterogeneous_lm_beats_rr() {
        // The central claim of Table VI: with slow and fast clients mixed,
        // compute-dominated jobs and realistic job-size variance,
        // Last-Minute beats blind Round-Robin. (With *constant* job sizes
        // the two policies tie — medians advance in lockstep and there are
        // no stragglers to fix, which is itself asserted below.)
        use crate::model::TraceModel;
        let model = TraceModel {
            game_len: 24,
            branching0: 8.0,
            ..TraceModel::level3_like()
        };
        let trace = model.synthesize(RunMode::FullGame, 13);
        let cluster = ClusterSpec::hetero_8x4_8x2().with_ns_per_unit(1e3);
        let rr = simulate_trace(&trace, &cluster, DispatchPolicy::RoundRobin);
        let lm = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute);
        assert!(
            lm.makespan < rr.makespan,
            "LM {} should beat RR {} on a heterogeneous cluster",
            lm.makespan,
            rr.makespan
        );
    }

    #[test]
    fn constant_jobs_make_policies_comparable() {
        // Companion to `heterogeneous_lm_beats_rr`: without job-size
        // variance LM has no straggler to fix and lands within a few
        // percent of RR.
        let g = SumGame::random(10, 4, 3);
        let (_, trace) = run_reference(&g, 2, 5, RunMode::FullGame, None);
        let cluster = ClusterSpec::oversubscribed(2, 1).with_ns_per_unit(1e6);
        let rr = simulate_trace(&trace, &cluster, DispatchPolicy::RoundRobin).makespan as f64;
        let lm = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute).makespan as f64;
        let ratio = lm / rr;
        assert!(
            (0.8..1.25).contains(&ratio),
            "LM/RR ratio {ratio} should be near 1"
        );
    }

    #[test]
    fn deterministic_replay() {
        let trace = small_trace(RunMode::FullGame);
        let c = ClusterSpec::homogeneous(5);
        let a = simulate_trace(&trace, &c, DispatchPolicy::LastMinute);
        let b = simulate_trace(&trace, &c, DispatchPolicy::LastMinute);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_latency_single_client_makespan_is_total_service_time() {
        let trace = small_trace(RunMode::FullGame);
        let c = ClusterSpec::homogeneous(1).with_latency(0);
        let out = simulate_trace(&trace, &c, DispatchPolicy::RoundRobin);
        // With one client and no latency the makespan is exactly the sum
        // of service times (each demand rounded individually).
        let expected: Time = trace
            .steps
            .iter()
            .flat_map(|s| &s.medians)
            .flat_map(|m| &m.steps)
            .flat_map(|st| &st.jobs)
            .map(|j| ((j.demand as f64 * c.ns_per_unit).round() as Time).max(1))
            .sum();
        assert_eq!(out.makespan, expected);
    }

    #[test]
    fn recorded_timelines_account_for_all_busy_time() {
        let trace = small_trace(RunMode::FullGame);
        let cluster = ClusterSpec::homogeneous(4);
        let (out, timelines) =
            simulate_trace_recorded(&trace, &cluster, DispatchPolicy::LastMinute);
        assert_eq!(timelines.len(), 4);
        let recorded_busy: u64 = timelines.iter().map(|t| t.busy()).sum();
        // Total busy time equals the sum of per-job service times, which
        // the stats expose via utilisation × makespan × clients.
        let expected: f64 = out.stats.mean_utilisation * out.makespan as f64 * 4.0;
        let diff = (recorded_busy as f64 - expected).abs() / expected.max(1.0);
        assert!(
            diff < 1e-6,
            "recorded busy {recorded_busy} vs stats {expected}"
        );
        // And the unrecorded variant returns identical timing.
        let plain = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute);
        assert_eq!(plain.makespan, out.makespan);
    }

    #[test]
    fn latency_increases_makespan() {
        let trace = small_trace(RunMode::FullGame);
        let fast = ClusterSpec::homogeneous(4).with_latency(0);
        let slow = ClusterSpec::homogeneous(4).with_latency(1_000_000);
        let a = simulate_trace(&trace, &fast, DispatchPolicy::LastMinute).makespan;
        let b = simulate_trace(&trace, &slow, DispatchPolicy::LastMinute).makespan;
        assert!(b > a);
    }
}
