//! Leaf-parallel batched NMCS — the third parallelisation axis.
//!
//! The paper parallelises *across candidate moves* (one median per root
//! move, one client per median move). WU-UCT and the later
//! parallel-MCTS literature get their wins from a different axis:
//! keeping many cheap rollouts in flight at once. This strategy applies
//! that idea to NMCS as **leaf parallelism**: the top-level game is
//! played greedily, and each candidate move is evaluated by a *batch* of
//! `batch` independent `level − 1` evaluations (single random playouts
//! at level 1) whose `(move, slot)` work items spread across a worker
//! pool.
//!
//! The implementation lives behind the unified front door
//! (`SearchSpec::leaf(level, batch, threads)`), which fans the items of
//! each step out over scoped std-thread workers with budget and
//! cancellation support; the [`leaf_nested`] function here is the
//! historical entry point, kept as a thin shim over the spec (and
//! asserted result-identical to it).
//!
//! Determinism contract: every work item's seed derives from its logical
//! coordinates through the same [`crate::seeds`] scheme the cluster
//! backends use — `median_seed(root_seed, step, move)` names the leaf,
//! and the batch slots index client seeds under it ([`slot_seed`]).
//! Scores therefore depend only on the search structure, never on
//! scheduling: results are bit-identical across any worker count, which
//! the tests assert.

use crate::trace::{ParallelOutcome, RunMode};
use nmcs_core::{CodedGame, SearchSpec, Searcher};
use std::time::Duration;

pub use crate::seeds::slot_seed;

/// Configuration for [`leaf_nested`].
#[derive(Debug, Clone)]
pub struct LeafConfig {
    /// Search level of the top-level game (≥ 1). Each candidate move is
    /// evaluated with `batch` independent `level − 1` evaluations.
    pub level: u32,
    /// Playouts (level-1) or sub-searches (level ≥ 2) per leaf. The
    /// candidate's value is the batch maximum.
    pub batch: usize,
    /// Worker threads.
    pub threads: usize,
    /// Root seed of the deterministic per-item derivation.
    pub seed: u64,
    pub mode: RunMode,
    pub playout_cap: Option<usize>,
}

impl LeafConfig {
    pub fn new(level: u32, batch: usize, threads: usize) -> Self {
        Self {
            level,
            batch,
            threads,
            seed: 0,
            mode: RunMode::FullGame,
            playout_cap: None,
        }
    }

    /// The equivalent unified spec: `leaf_nested(game, &config)` and
    /// `config.to_spec().run(&game)` produce identical outcomes.
    pub fn to_spec(&self) -> SearchSpec {
        let mut builder = SearchSpec::leaf(self.level, self.batch, self.threads).seed(self.seed);
        if let Some(cap) = self.playout_cap {
            builder = builder.playout_cap(cap);
        }
        if self.mode == RunMode::FirstMove {
            builder = builder.first_move_only();
        }
        builder.build()
    }
}

/// Runs a top-level greedy NMCS whose candidate moves are each evaluated
/// by a batch of `config.batch` seeded evaluations fanned out over a
/// worker pool. Returns the outcome and the wall-clock duration.
///
/// Ties break toward the lower move index (and are score-exact because
/// every slot's result is deterministic), so the chosen move never
/// depends on which worker finished first.
#[deprecated(note = "use SearchSpec::leaf(level, batch, threads) — the unified search API")]
pub fn leaf_nested<G>(game: &G, config: &LeafConfig) -> (ParallelOutcome<G::Move>, Duration)
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    let report = config.to_spec().search(game, None);
    (
        ParallelOutcome {
            score: report.score,
            sequence: report.sequence,
            total_work: report.stats.work_units,
            client_jobs: report.client_jobs,
        },
        report.elapsed,
    )
}

#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_games::{NeedleLadder, SameGame, SumGame};

    #[test]
    fn worker_count_does_not_change_results() {
        let g = SameGame::random(5, 5, 3, 11);
        let mut reference: Option<ParallelOutcome<_>> = None;
        for threads in [1, 2, 4] {
            let mut cfg = LeafConfig::new(1, 4, threads);
            cfg.seed = 2009;
            let (out, _) = leaf_nested(&g, &cfg);
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    assert_eq!(out.score, r.score, "{threads} workers");
                    assert_eq!(out.sequence, r.sequence, "{threads} workers");
                    assert_eq!(out.total_work, r.total_work, "{threads} workers");
                    assert_eq!(out.client_jobs, r.client_jobs, "{threads} workers");
                }
            }
        }
    }

    #[test]
    fn shim_equals_spec_seed_for_seed() {
        let g = SameGame::random(5, 5, 3, 3);
        for seed in [0u64, 7, 2009] {
            let mut cfg = LeafConfig::new(1, 3, 2);
            cfg.seed = seed;
            let (out, _) = leaf_nested(&g, &cfg);
            let report = cfg.to_spec().run(&g);
            assert_eq!(out.score, report.score, "seed {seed}");
            assert_eq!(out.sequence, report.sequence, "seed {seed}");
            assert_eq!(out.total_work, report.stats.work_units, "seed {seed}");
            assert_eq!(out.client_jobs, report.client_jobs, "seed {seed}");
        }
    }

    #[test]
    fn batch_size_one_level_one_counts_one_playout_per_move() {
        let g = SumGame::random(4, 3, 2);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(1, 1, 2));
        assert_eq!(out.sequence.len(), 4);
        assert_eq!(out.client_jobs, 12, "3 moves × 1 slot × 4 steps");
    }

    #[test]
    fn batching_multiplies_leaf_evaluations() {
        let g = SumGame::random(4, 3, 2);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(1, 8, 4));
        assert_eq!(out.client_jobs, 96, "3 moves × 8 slots × 4 steps");
    }

    #[test]
    fn solves_needle_ladder_like_the_other_backends() {
        let g = NeedleLadder::new(10);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(1, 2, 2));
        assert_eq!(out.score, g.optimum());
    }

    #[test]
    fn bigger_batches_never_hurt_on_average() {
        // The batch max over more independent playouts stochastically
        // dominates fewer; averaged over instances it must not be worse.
        let trials = 8;
        let mut small = 0i64;
        let mut large = 0i64;
        for seed in 0..trials {
            let g = SumGame::random(5, 4, seed);
            let mut c1 = LeafConfig::new(1, 1, 2);
            c1.seed = seed;
            let mut c8 = LeafConfig::new(1, 8, 2);
            c8.seed = seed;
            small += leaf_nested(&g, &c1).0.score;
            large += leaf_nested(&g, &c8).0.score;
        }
        assert!(
            large >= small,
            "batch 8 total {large} must not trail batch 1 total {small}"
        );
    }

    #[test]
    fn first_move_mode_stops_after_one_step() {
        let g = SumGame::random(5, 3, 4);
        let mut cfg = LeafConfig::new(2, 2, 2);
        cfg.mode = RunMode::FirstMove;
        let (out, _) = leaf_nested(&g, &cfg);
        assert_eq!(out.sequence.len(), 1);
    }

    #[test]
    fn slot_seeds_are_pinned_and_distinct() {
        // Part of the determinism contract: a change here invalidates
        // recorded results.
        let a = slot_seed(42, 0, 0, 0);
        assert_eq!(a, slot_seed(42, 0, 0, 0));
        assert_ne!(a, slot_seed(42, 0, 0, 1));
        assert_ne!(a, slot_seed(42, 0, 1, 0));
        assert_ne!(a, slot_seed(42, 1, 0, 0));
        assert_ne!(a, slot_seed(43, 0, 0, 0));
    }

    #[test]
    fn level_two_uses_nested_evaluations() {
        let g = SumGame::random(4, 3, 9);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(2, 2, 2));
        assert_eq!(out.sequence.len(), 4);
        assert!(out.total_work > 0);
    }
}
