//! Leaf-parallel batched NMCS — the third parallelisation axis.
//!
//! The paper parallelises *across candidate moves* (one median per root
//! move, one client per median move). WU-UCT and the later
//! parallel-MCTS literature get their wins from a different axis:
//! keeping many cheap rollouts in flight at once. This module applies
//! that idea to NMCS as **leaf parallelism**: the top-level game is
//! played greedily, and each candidate move is evaluated by a *batch* of
//! `batch` independent `level − 1` evaluations (single random playouts
//! at level 1) whose `(move, slot)` work items spread across a worker
//! pool.
//!
//! Determinism contract: every work item's seed derives from its logical
//! coordinates through the same [`crate::seeds`] scheme the cluster
//! backends use — `median_seed(root_seed, step, move)` names the leaf,
//! and the batch slots index client seeds under it. Scores therefore
//! depend only on the search structure, never on scheduling: results are
//! bit-identical across any worker count, which the tests assert.
//!
//! The per-item evaluations run on positions with the scratch-state
//! fast path (see [`nmcs_core::Game::apply`]) wherever the game provides
//! one: each worker mutates its private copy forward and never clones
//! inside the playout loop.

use crate::seeds::{client_seed, median_seed};
use crate::trace::{ParallelOutcome, RunMode};
use crossbeam::channel::unbounded;
use nmcs_core::{nested, NestedConfig, PlayoutScratch, Rng, SearchStats};
use nmcs_core::{Game, Score};
use std::time::{Duration, Instant};

/// Configuration for [`leaf_nested`].
#[derive(Debug, Clone)]
pub struct LeafConfig {
    /// Search level of the top-level game (≥ 1). Each candidate move is
    /// evaluated with `batch` independent `level − 1` evaluations.
    pub level: u32,
    /// Playouts (level-1) or sub-searches (level ≥ 2) per leaf. The
    /// candidate's value is the batch maximum.
    pub batch: usize,
    /// Worker threads.
    pub threads: usize,
    /// Root seed of the deterministic per-item derivation.
    pub seed: u64,
    pub mode: RunMode,
    pub playout_cap: Option<usize>,
}

impl LeafConfig {
    pub fn new(level: u32, batch: usize, threads: usize) -> Self {
        Self {
            level,
            batch,
            threads,
            seed: 0,
            mode: RunMode::FullGame,
            playout_cap: None,
        }
    }
}

/// The seed of batch slot `slot` of the leaf at `(step, move)` — the
/// existing client derivation with the slot in the client-move position,
/// pinned as part of the cross-backend determinism contract.
pub fn slot_seed(root_seed: u64, step: usize, mv: usize, slot: usize) -> u64 {
    client_seed(median_seed(root_seed, step, mv), 0, slot)
}

/// Runs a top-level greedy NMCS whose candidate moves are each evaluated
/// by a batch of `config.batch` seeded evaluations fanned out over a
/// worker pool. Returns the outcome and the wall-clock duration.
///
/// Ties break toward the lower move index (and are score-exact because
/// every slot's result is deterministic), so the chosen move never
/// depends on which worker finished first.
pub fn leaf_nested<G>(game: &G, config: &LeafConfig) -> (ParallelOutcome<G::Move>, Duration)
where
    G: Game + Send,
    G::Move: Send,
{
    assert!(config.level >= 1, "leaf_nested needs level >= 1");
    assert!(config.batch >= 1, "leaf_nested needs batch >= 1");
    assert!(config.threads >= 1);
    let eval_level = config.level - 1;
    let nconfig = NestedConfig {
        playout_cap: config.playout_cap,
        ..NestedConfig::paper()
    };

    let started = Instant::now();
    let mut pos = game.clone();
    let mut sequence = Vec::new();
    let mut total_work = 0u64;
    let mut client_jobs = 0u64;
    let mut first_step_best: Option<Score> = None;
    let mut moves: Vec<G::Move> = Vec::new();
    let mut step = 0usize;

    loop {
        pos.legal_moves_into(&mut moves);
        if moves.is_empty() {
            break;
        }

        // Fan (move, slot) items out over a scoped pool. Positions are
        // cloned once per item at the fan-out boundary (threads need
        // owned state); everything inside the item is clone-free.
        let (job_tx, job_rx) = unbounded::<(usize, usize, G)>();
        let (res_tx, res_rx) = unbounded::<(usize, Score, u64)>();
        for (i, mv) in moves.iter().enumerate() {
            let mut child = pos.clone();
            child.play(mv);
            for slot in 0..config.batch {
                job_tx
                    .send((i, slot, child.clone()))
                    .expect("job queue open");
            }
        }
        drop(job_tx);

        let items = moves.len() * config.batch;
        crossbeam::scope(|scope| {
            for _ in 0..config.threads.min(items) {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let nconfig = &nconfig;
                let seed = config.seed;
                scope.spawn(move |_| {
                    let mut scratch = PlayoutScratch::new();
                    let mut seq = Vec::new();
                    while let Ok((i, slot, mut child)) = job_rx.recv() {
                        let mut rng = Rng::seeded(slot_seed(seed, step, i, slot));
                        let (score, work) = if eval_level == 0 {
                            let mut stats = SearchStats::new();
                            seq.clear();
                            let s = scratch.run(
                                &mut child,
                                &mut rng,
                                nconfig.playout_cap,
                                &mut seq,
                                &mut stats,
                            );
                            (s, stats.work_units)
                        } else {
                            let r = nested(&child, eval_level, nconfig, &mut rng);
                            (r.score, r.stats.work_units)
                        };
                        res_tx.send((i, score, work)).expect("result channel open");
                    }
                });
            }
        })
        .expect("pool workers do not panic");
        drop(res_tx);

        // Deterministic reduce: batch-max per move, argmax over moves
        // with ties to the lower index.
        let mut per_move: Vec<Option<Score>> = vec![None; moves.len()];
        for (i, score, work) in res_rx.iter() {
            total_work += work;
            client_jobs += 1;
            per_move[i] = Some(per_move[i].map_or(score, |s: Score| s.max(score)));
        }
        let (best_idx, best_score) = per_move
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.expect("every leaf evaluated")))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("non-empty move list");
        if step == 0 {
            first_step_best = Some(best_score);
        }
        sequence.push(moves[best_idx].clone());
        pos.play(&moves[best_idx]);
        step += 1;
        if config.mode == RunMode::FirstMove {
            break;
        }
    }

    let score = match config.mode {
        RunMode::FirstMove => first_step_best.unwrap_or_else(|| pos.score()),
        RunMode::FullGame => pos.score(),
    };
    (
        ParallelOutcome {
            score,
            sequence,
            total_work,
            client_jobs,
        },
        started.elapsed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_games::{NeedleLadder, SameGame, SumGame};

    #[test]
    fn worker_count_does_not_change_results() {
        let g = SameGame::random(5, 5, 3, 11);
        let mut reference: Option<ParallelOutcome<_>> = None;
        for threads in [1, 2, 4] {
            let mut cfg = LeafConfig::new(1, 4, threads);
            cfg.seed = 2009;
            let (out, _) = leaf_nested(&g, &cfg);
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    assert_eq!(out.score, r.score, "{threads} workers");
                    assert_eq!(out.sequence, r.sequence, "{threads} workers");
                    assert_eq!(out.total_work, r.total_work, "{threads} workers");
                    assert_eq!(out.client_jobs, r.client_jobs, "{threads} workers");
                }
            }
        }
    }

    #[test]
    fn batch_size_one_level_one_counts_one_playout_per_move() {
        let g = SumGame::random(4, 3, 2);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(1, 1, 2));
        assert_eq!(out.sequence.len(), 4);
        assert_eq!(out.client_jobs, 12, "3 moves × 1 slot × 4 steps");
    }

    #[test]
    fn batching_multiplies_leaf_evaluations() {
        let g = SumGame::random(4, 3, 2);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(1, 8, 4));
        assert_eq!(out.client_jobs, 96, "3 moves × 8 slots × 4 steps");
    }

    #[test]
    fn solves_needle_ladder_like_the_other_backends() {
        let g = NeedleLadder::new(10);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(1, 2, 2));
        assert_eq!(out.score, g.optimum());
    }

    #[test]
    fn bigger_batches_never_hurt_on_average() {
        // The batch max over more independent playouts stochastically
        // dominates fewer; averaged over instances it must not be worse.
        let trials = 8;
        let mut small = 0i64;
        let mut large = 0i64;
        for seed in 0..trials {
            let g = SumGame::random(5, 4, seed);
            let mut c1 = LeafConfig::new(1, 1, 2);
            c1.seed = seed;
            let mut c8 = LeafConfig::new(1, 8, 2);
            c8.seed = seed;
            small += leaf_nested(&g, &c1).0.score;
            large += leaf_nested(&g, &c8).0.score;
        }
        assert!(
            large >= small,
            "batch 8 total {large} must not trail batch 1 total {small}"
        );
    }

    #[test]
    fn first_move_mode_stops_after_one_step() {
        let g = SumGame::random(5, 3, 4);
        let mut cfg = LeafConfig::new(2, 2, 2);
        cfg.mode = RunMode::FirstMove;
        let (out, _) = leaf_nested(&g, &cfg);
        assert_eq!(out.sequence.len(), 1);
    }

    #[test]
    fn slot_seeds_are_pinned_and_distinct() {
        // Part of the determinism contract: a change here invalidates
        // recorded results.
        let a = slot_seed(42, 0, 0, 0);
        assert_eq!(a, slot_seed(42, 0, 0, 0));
        assert_ne!(a, slot_seed(42, 0, 0, 1));
        assert_ne!(a, slot_seed(42, 0, 1, 0));
        assert_ne!(a, slot_seed(42, 1, 0, 0));
        assert_ne!(a, slot_seed(43, 0, 0, 0));
    }

    #[test]
    fn level_two_uses_nested_evaluations() {
        let g = SumGame::random(4, 3, 9);
        let (out, _) = leaf_nested(&g, &LeafConfig::new(2, 2, 2));
        assert_eq!(out.sequence.len(), 4);
        assert!(out.total_work > 0);
    }
}
