//! # parallel-nmcs — Parallel Nested Monte-Carlo Search
//!
//! The primary contribution of *"Parallel Nested Monte-Carlo Search"*
//! (Cazenave & Jouandeau, 2009): a cluster parallelisation of NMCS with
//! four process roles — root, median, dispatcher, client — and two
//! dispatch policies, **Round-Robin** and **Last-Minute**.
//!
//! Three interchangeable executions of the same algorithm:
//!
//! * [`trace::run_reference`] — sequential reference; also records the
//!   fork-join job [`trace::SearchTrace`].
//! * [`runner::run_threads`] — real parallelism: every role is an OS
//!   thread exchanging messages over the `cluster-rt` runtime (the
//!   Open MPI substitute).
//! * [`sim::simulate_trace`] — virtual time: replays a trace on a
//!   simulated cluster of any size/heterogeneity (the 64-core-cluster
//!   substitute), driving the *same* [`dispatcher::DispatcherCore`] as
//!   the threaded backend.
//!
//! All three agree bit-for-bit on search decisions because every
//! evaluation job's randomness derives from its logical coordinates
//! ([`seeds`]). [`model::TraceModel`] generates synthetic paper-scale
//! workloads for the level-4 tables, and [`shared::par_nested`] is the
//! shared-memory worker-pool ablation.

pub mod dispatcher;
pub mod leaf;
pub mod model;
pub mod protocol;
pub mod runner;
pub mod seeds;
pub mod shared;
pub mod sim;
pub mod trace;

pub use dispatcher::{DispatchPolicy, DispatcherCore};
pub use leaf::LeafConfig;
pub use model::TraceModel;
pub use protocol::{Msg, DISPATCHER, ROOT};
pub use runner::{run_threads_traced, ThreadConfig, ThreadReport};

// Deprecated shims re-exported under their historical paths.
#[allow(deprecated)]
pub use leaf::leaf_nested;
#[allow(deprecated)]
pub use runner::run_threads;
pub use seeds::{client_seed, median_seed};
pub use shared::{par_nested, PoolConfig};
pub use sim::{
    simulate_trace, simulate_trace_recorded, single_client_reference, sweep_cluster_sizes,
    SimOutcome,
};
pub use trace::{
    ClientJob, MedianStepTrace, MedianTrace, ParallelOutcome, RootStepTrace, RunMode, SearchTrace,
};
