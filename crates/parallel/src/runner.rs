//! The threaded backend: real root/median/dispatcher/client processes
//! exchanging messages over the `cluster-rt` runtime (paper §IV with
//! Open MPI replaced by in-process message passing).
//!
//! Every role below is a direct transcription of the paper's pseudocode;
//! the comments quote the corresponding lines. Scores are derived from
//! per-job seeds, so the outcome is bit-identical to
//! [`crate::trace::run_reference`] regardless of thread scheduling — the
//! agreement test in this module asserts exactly that.

use crate::dispatcher::{DispatchPolicy, DispatcherCore};
use crate::protocol::{client_rank, median_rank, world_size, Msg, DISPATCHER, ROOT};
use crate::seeds::{client_seed, median_seed};
use crate::trace::{ParallelOutcome, RunMode};
use cluster_rt::{Endpoint, Rank, Trace, World};
use nmcs_core::metrics::monotonic_now;
use nmcs_core::{nested_with, Game, NestedConfig, Rng, Score, SearchCtx, SearchSpec};
use std::time::Duration;

/// Configuration of a threaded parallel search.
#[derive(Debug, Clone)]
pub struct ThreadConfig {
    /// Root search level (≥ 2; clients run `level − 2`).
    pub level: u32,
    pub policy: DispatchPolicy,
    /// Number of client processes.
    pub n_clients: usize,
    /// Number of median processes. The paper provisions more medians than
    /// the maximum branching factor; if a position has more moves than
    /// medians, requests are multiplexed round-robin over medians (they
    /// queue in mailboxes), which preserves correctness.
    pub n_medians: usize,
    pub seed: u64,
    pub mode: RunMode,
    /// Optional per-client slowdown factors (`1.0` = full speed); used to
    /// emulate a heterogeneous cluster on homogeneous local cores by
    /// sleeping `(1/speed − 1) ×` compute time after each job.
    pub client_speeds: Option<Vec<f64>>,
    /// Playout cap forwarded to client searches (scaled experiments only).
    pub playout_cap: Option<usize>,
}

impl ThreadConfig {
    /// A sensible default: level 2, Last-Minute, `n` clients, enough
    /// medians for small games.
    pub fn new(level: u32, policy: DispatchPolicy, n_clients: usize) -> Self {
        Self {
            level,
            policy,
            n_clients,
            n_medians: 40, // the paper runs 40 median processes
            seed: 0,
            mode: RunMode::FullGame,
            client_speeds: None,
            playout_cap: None,
        }
    }

    /// The equivalent unified spec (`SearchSpec::root_parallel`). The
    /// dispatch policy, median count, and client-speed emulation are
    /// execution knobs that cannot change *results* (the determinism
    /// contract), so the spec carries only the result-relevant fields
    /// plus a worker count; `run_threads(game, &config)` and
    /// `config.to_spec().run(&game)` produce identical outcomes
    /// seed-for-seed.
    pub fn to_spec(&self) -> SearchSpec {
        let mut builder =
            SearchSpec::root_parallel(self.level, self.n_clients.max(1)).seed(self.seed);
        if let Some(cap) = self.playout_cap {
            builder = builder.playout_cap(cap);
        }
        if self.mode == RunMode::FirstMove {
            builder = builder.first_move_only();
        }
        builder.build()
    }
}

/// Timing and throughput measurements of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    pub wall: Duration,
    /// Total work units executed by clients.
    pub total_work: u64,
    pub client_jobs: u64,
}

/// Runs the parallel search on real threads. Returns the outcome (scores,
/// moves) and a wall-clock report.
///
/// This is the paper-faithful message-passing reproduction (root, median,
/// dispatcher, and client processes over the `cluster-rt` runtime). The
/// unified `SearchSpec::root_parallel(level, threads)` runs the same
/// strategy with identical results plus budget/cancellation support; use
/// this function (or [`run_threads_traced`]) when the point is the
/// communication structure itself.
#[deprecated(
    note = "use SearchSpec::root_parallel(level, threads) — the unified search API — unless you need the message-passing runtime itself"
)]
pub fn run_threads<G>(game: &G, config: &ThreadConfig) -> (ParallelOutcome<G::Move>, ThreadReport)
where
    G: Game + Send + 'static,
    G::Move: Send + 'static,
{
    let (outcome, report, _) = run_threads_inner(game, config, false);
    (outcome, report)
}

/// Like [`run_threads`] but records the full message trace (used by the
/// tests that assert the paper's Figure 2–5 communication patterns).
pub fn run_threads_traced<G>(
    game: &G,
    config: &ThreadConfig,
) -> (
    ParallelOutcome<G::Move>,
    ThreadReport,
    Vec<cluster_rt::TraceEntry>,
)
where
    G: Game + Send + 'static,
    G::Move: Send + 'static,
{
    let (outcome, report, trace) = run_threads_inner(game, config, true);
    (outcome, report, trace.expect("trace requested"))
}

fn run_threads_inner<G>(
    game: &G,
    config: &ThreadConfig,
    traced: bool,
) -> (
    ParallelOutcome<G::Move>,
    ThreadReport,
    Option<Vec<cluster_rt::TraceEntry>>,
)
where
    G: Game + Send + 'static,
    G::Move: Send + 'static,
{
    assert!(config.level >= 2, "parallel NMCS needs level >= 2");
    assert!(config.n_clients > 0 && config.n_medians > 0);
    if let Some(speeds) = &config.client_speeds {
        assert_eq!(speeds.len(), config.n_clients, "one speed per client");
    }

    let n = world_size(config.n_medians, config.n_clients);
    let (mut world, trace): (World<Msg<G, G::Move>>, Option<Trace>) = if traced {
        let (w, t) = World::new_traced(n);
        (w, Some(t))
    } else {
        (World::new(n), None)
    };

    let start = monotonic_now();
    let mut handles = Vec::new();

    // ---- dispatcher ----
    let mut disp_ep = world.take_endpoint(DISPATCHER);
    let client_ranks: Vec<Rank> = (0..config.n_clients)
        .map(|i| client_rank(config.n_medians, i))
        .collect();
    let mut core = DispatcherCore::new(config.policy, client_ranks);
    // nmcs-lint: allow(spawn-discipline) reason="the dispatcher is a cluster process of the paper's threaded reference runtime, not pool work"
    handles.push(std::thread::spawn(move || {
        loop {
            let env = disp_ep.recv();
            match env.msg {
                // "Receive median node from any median node; send client
                // to median node."
                Msg::WhichClient { moves_played } => {
                    if let Some(client) = core.on_request(env.from, moves_played) {
                        disp_ep.send(env.from, Msg::UseClient { client });
                    }
                }
                // Last-Minute (c'): a freed client either serves the
                // longest pending job or parks on the free list.
                Msg::ClientFree => {
                    if let Some((median, client)) = core.on_client_free(env.from) {
                        disp_ep.send(median, Msg::UseClient { client });
                    }
                }
                Msg::Shutdown => break,
                other => unreachable!("dispatcher got {}", cluster_rt::Tagged::tag(&other)),
            }
        }
    }));

    // ---- clients ----
    let notify_free = config.policy.uses_free_list();
    let client_config = NestedConfig {
        playout_cap: config.playout_cap,
        ..NestedConfig::paper()
    };
    for i in 0..config.n_clients {
        let mut ep = world.take_endpoint(client_rank(config.n_medians, i));
        let cfg = client_config.clone();
        let speed = config.client_speeds.as_ref().map_or(1.0, |s| s[i]);
        // nmcs-lint: allow(spawn-discipline) reason="each client rank is a cluster process of the paper's threaded reference runtime, not pool work"
        handles.push(std::thread::spawn(move || {
            loop {
                let env = ep.recv();
                match env.msg {
                    // "Receive position from median node; score =
                    // nestedRollout(position, level)."
                    Msg::EvalRequest {
                        position,
                        level,
                        seed,
                        job,
                    } => {
                        let t0 = monotonic_now();
                        let mut ctx = SearchCtx::unbounded();
                        let (score, sequence) =
                            nested_with(&position, level, &cfg, &mut Rng::seeded(seed), &mut ctx);
                        if speed < 1.0 {
                            // Emulate a slower core: stretch the service
                            // time by 1/speed.
                            let extra = t0.elapsed().mul_f64(1.0 / speed - 1.0);
                            std::thread::sleep(extra);
                        }
                        // "If LastMinute: send self node to dispatcher."
                        if notify_free {
                            ep.send(DISPATCHER, Msg::ClientFree);
                        }
                        // "Send score to median node."
                        ep.send(
                            env.from,
                            Msg::EvalResult {
                                job,
                                score,
                                sequence,
                                work: ctx.stats().work_units,
                                jobs: 1,
                            },
                        );
                    }
                    Msg::Shutdown => break,
                    other => unreachable!("client got {}", cluster_rt::Tagged::tag(&other)),
                }
            }
        }));
    }

    // ---- medians ----
    for m in 0..config.n_medians {
        let mut ep = world.take_endpoint(median_rank(m));
        // nmcs-lint: allow(spawn-discipline) reason="each median rank is a cluster process of the paper's threaded reference runtime, not pool work"
        handles.push(std::thread::spawn(move || median_loop::<G>(&mut ep)));
    }

    // ---- root (this thread) ----
    let mut root_ep = world.take_endpoint(ROOT);
    let outcome = root_loop(game, config, &mut root_ep);

    // Orderly shutdown: everyone is idle once the root has its results.
    for r in 1..n {
        root_ep.send(r, Msg::Shutdown);
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    let wall = start.elapsed();

    let report = ThreadReport {
        wall,
        total_work: outcome.total_work,
        client_jobs: outcome.client_jobs,
    };
    let log = trace.map(|t| t.lock().clone());
    (outcome, report, log)
}

/// The root process (paper §IV-A root pseudocode): at each game step,
/// send one position per candidate move to a median, collect all scores,
/// play the best move.
fn root_loop<G>(
    game: &G,
    config: &ThreadConfig,
    ep: &mut Endpoint<Msg<G, G::Move>>,
) -> ParallelOutcome<G::Move>
where
    G: Game + Send,
    G::Move: Send,
{
    let mut pos = game.clone();
    let mut sequence = Vec::new();
    let mut total_work = 0u64;
    let mut client_jobs = 0u64;
    let mut first_step_best: Option<Score> = None;
    let mut moves: Vec<G::Move> = Vec::new();
    let mut root_step = 0usize;

    loop {
        moves.clear();
        pos.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        // "Node = first median node; for m in all possible moves: p =
        // play(position, m); send p to node; node = next median node."
        for (i, mv) in moves.iter().enumerate() {
            let mut child = pos.clone();
            child.play(mv);
            ep.send(
                median_rank(i % config.n_medians),
                Msg::EvalRequest {
                    position: child,
                    level: config.level - 1,
                    seed: median_seed(config.seed, root_step, i),
                    job: i,
                },
            );
        }
        // "For m in all possible moves: receive score from node."
        let mut best: Option<(Score, usize)> = None;
        for _ in 0..moves.len() {
            let env = ep.recv();
            let Msg::EvalResult {
                job,
                score,
                work,
                jobs,
                ..
            } = env.msg
            else {
                unreachable!("root expects results")
            };
            total_work += work;
            client_jobs += jobs;
            if best.is_none_or(|(bs, bj)| score > bs || (score == bs && job < bj)) {
                best = Some((score, job));
            }
        }
        let (best_score, best_idx) = best.expect("non-empty move list");
        if root_step == 0 {
            first_step_best = Some(best_score);
        }
        // "Position = play(position, move with best score)."
        sequence.push(moves[best_idx].clone());
        pos.play(&moves[best_idx]);
        root_step += 1;
        if config.mode == RunMode::FirstMove {
            break;
        }
    }

    let score = match config.mode {
        RunMode::FirstMove => first_step_best.unwrap_or_else(|| pos.score()),
        RunMode::FullGame => pos.score(),
    };
    ParallelOutcome {
        score,
        sequence,
        total_work,
        client_jobs,
    }
}

/// The median process (paper §IV-A median pseudocode).
fn median_loop<G>(ep: &mut Endpoint<Msg<G, G::Move>>)
where
    G: Game + Send,
    G::Move: Send,
{
    let mut moves: Vec<G::Move> = Vec::new();
    loop {
        let env = ep.recv();
        let (root_job, mut pos, mlevel, mseed) = match env.msg {
            Msg::EvalRequest {
                position,
                level,
                seed,
                job,
            } => (job, position, level, seed),
            Msg::Shutdown => return,
            other => unreachable!("median got {}", cluster_rt::Tagged::tag(&other)),
        };
        let client_level = mlevel - 1;
        let mut work_total = 0u64;
        let mut jobs_total = 0u64;
        let mut mstep = 0usize;
        loop {
            moves.clear();
            pos.legal_moves(&mut moves);
            if moves.is_empty() {
                break;
            }
            // "For m in all possible moves: send self id and number of
            // moves played in p to dispatcher; receive client from
            // dispatcher; send p to client."
            for (j, mv) in moves.iter().enumerate() {
                let mut child = pos.clone();
                child.play(mv);
                ep.send(
                    DISPATCHER,
                    Msg::WhichClient {
                        moves_played: child.moves_played(),
                    },
                );
                let reply = ep.recv_matching(|e| matches!(e.msg, Msg::UseClient { .. }));
                let Msg::UseClient { client } = reply.msg else {
                    unreachable!()
                };
                ep.send(
                    client,
                    Msg::EvalRequest {
                        position: child,
                        level: client_level,
                        seed: client_seed(mseed, mstep, j),
                        job: j,
                    },
                );
            }
            // "For m in all possible moves: receive score from client."
            let mut best: Option<(Score, usize)> = None;
            for _ in 0..moves.len() {
                let env = ep.recv_matching(|e| matches!(e.msg, Msg::EvalResult { .. }));
                let Msg::EvalResult {
                    job,
                    score,
                    work,
                    jobs,
                    ..
                } = env.msg
                else {
                    unreachable!()
                };
                work_total += work;
                jobs_total += jobs;
                if best.is_none_or(|(bs, bj)| score > bs || (score == bs && job < bj)) {
                    best = Some((score, job));
                }
            }
            // "Position = play(position, move with best score)."
            let (_, best_idx) = best.expect("non-empty move list");
            pos.play(&moves[best_idx]);
            mstep += 1;
        }
        // "Send score to root" — plus the aggregated instrumentation.
        ep.send(
            ROOT,
            Msg::EvalResult {
                job: root_job,
                score: pos.score(),
                sequence: Vec::new(),
                work: work_total,
                jobs: jobs_total,
            },
        );
    }
}

// The tests exercise the deprecated entry point on purpose: the shim
// contract (run_threads ≡ reference ≡ SearchSpec) is regression surface.
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::run_reference;
    use nmcs_games::{NeedleLadder, SumGame};

    fn config(level: u32, policy: DispatchPolicy, clients: usize) -> ThreadConfig {
        ThreadConfig {
            n_medians: 4,
            seed: 77,
            ..ThreadConfig::new(level, policy, clients)
        }
    }

    #[test]
    fn threads_play_full_games_near_optimum() {
        let g = SumGame::random(5, 3, 11);
        for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
            let (out, report) = run_threads(&g, &config(2, policy, 3));
            assert!(
                out.score as f64 >= 0.9 * g.optimum() as f64,
                "{policy}: {} vs optimum {}",
                out.score,
                g.optimum()
            );
            assert_eq!(out.sequence.len(), 5);
            assert!(report.total_work > 0);
        }
    }

    #[test]
    fn threads_agree_with_unified_spec_seed_for_seed() {
        // The satellite contract: the legacy entry point and the unified
        // SearchSpec front door produce identical outcomes per seed.
        let g = SumGame::random(5, 3, 21);
        for mode in [RunMode::FirstMove, RunMode::FullGame] {
            let mut cfg = config(2, DispatchPolicy::LastMinute, 3);
            cfg.mode = mode;
            let (t_out, report) = run_threads(&g, &cfg);
            let spec_report = cfg.to_spec().run(&g);
            assert_eq!(t_out.score, spec_report.score, "{mode:?}");
            assert_eq!(t_out.sequence, spec_report.sequence, "{mode:?}");
            assert_eq!(t_out.total_work, spec_report.stats.work_units, "{mode:?}");
            assert_eq!(t_out.client_jobs, spec_report.client_jobs, "{mode:?}");
            assert_eq!(report.total_work, spec_report.total_work(), "{mode:?}");
        }
    }

    #[test]
    fn threads_agree_with_reference_implementation() {
        let g = SumGame::random(5, 3, 21);
        for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
            for mode in [RunMode::FirstMove, RunMode::FullGame] {
                let mut cfg = config(2, policy, 3);
                cfg.mode = mode;
                let (t_out, _) = run_threads(&g, &cfg);
                let (r_out, _) = run_reference(&g, 2, cfg.seed, mode, None);
                assert_eq!(t_out.score, r_out.score, "{policy} {mode:?}");
                assert_eq!(t_out.sequence, r_out.sequence, "{policy} {mode:?}");
                assert_eq!(t_out.total_work, r_out.total_work, "{policy} {mode:?}");
            }
        }
    }

    #[test]
    fn threads_climb_needle_ladder_at_level_2() {
        let g = NeedleLadder::new(8);
        let (out, _) = run_threads(&g, &config(2, DispatchPolicy::LastMinute, 2));
        assert_eq!(out.score, g.optimum());
    }

    #[test]
    fn more_moves_than_medians_multiplexes_correctly() {
        let g = SumGame::random(4, 6, 2); // 6 moves, only 2 medians
        let mut cfg = config(2, DispatchPolicy::RoundRobin, 2);
        cfg.n_medians = 2;
        let (out, _) = run_threads(&g, &cfg);
        let (r_out, _) = run_reference(&g, 2, cfg.seed, RunMode::FullGame, None);
        assert_eq!(out.score, r_out.score);
        assert_eq!(out.sequence, r_out.sequence);
    }

    #[test]
    fn first_move_mode_returns_single_move() {
        let g = SumGame::random(5, 3, 31);
        let mut cfg = config(2, DispatchPolicy::LastMinute, 3);
        cfg.mode = RunMode::FirstMove;
        let (out, _) = run_threads(&g, &cfg);
        assert_eq!(out.sequence.len(), 1);
    }

    #[test]
    fn level_3_works_end_to_end_on_tiny_game() {
        let g = SumGame::random(3, 2, 5);
        let (out, _) = run_threads(&g, &config(3, DispatchPolicy::LastMinute, 2));
        assert_eq!(out.score, g.optimum(), "level 3 is exhaustive here");
        let (r_out, _) = run_reference(&g, 3, 77, RunMode::FullGame, None);
        assert_eq!(out.score, r_out.score);
        assert_eq!(out.total_work, r_out.total_work);
    }

    #[test]
    fn slow_clients_do_not_change_results() {
        let g = SumGame::random(4, 3, 13);
        let mut cfg = config(2, DispatchPolicy::LastMinute, 3);
        cfg.client_speeds = Some(vec![1.0, 0.5, 1.0]);
        let (out, _) = run_threads(&g, &cfg);
        let (r_out, _) = run_reference(&g, 2, cfg.seed, RunMode::FullGame, None);
        assert_eq!(out.score, r_out.score);
        assert_eq!(out.sequence, r_out.sequence);
    }

    #[test]
    fn message_flow_matches_figures_2_to_5() {
        let g = SumGame::random(3, 2, 9);
        let mut cfg = config(2, DispatchPolicy::LastMinute, 2);
        cfg.mode = RunMode::FirstMove;
        let (_, _, log) = run_threads_traced(&g, &cfg);

        // (a) root → median eval requests exist.
        assert!(log.iter().any(|e| e.from == ROOT && e.tag == "EvalRequest"));
        // (b) median → dispatcher → median → client chains exist.
        assert!(log
            .iter()
            .any(|e| e.to == DISPATCHER && e.tag == "WhichClient"));
        assert!(log
            .iter()
            .any(|e| e.from == DISPATCHER && e.tag == "UseClient"));
        // (c) client → median results and (c') client → dispatcher frees.
        assert!(log.iter().any(|e| e.tag == "EvalResult"));
        assert!(log
            .iter()
            .any(|e| e.to == DISPATCHER && e.tag == "ClientFree"));
        // (d) median → root result.
        assert!(log.iter().any(|e| e.to == ROOT && e.tag == "EvalResult"));
        // Every WhichClient precedes its UseClient (per median): check
        // globally that counts match.
        let asks = log.iter().filter(|e| e.tag == "WhichClient").count();
        let grants = log.iter().filter(|e| e.tag == "UseClient").count();
        assert_eq!(asks, grants);
    }

    #[test]
    fn job_counts_agree_with_reference() {
        let g = SumGame::random(4, 3, 17);
        let cfg = config(2, DispatchPolicy::RoundRobin, 2);
        let (out, _) = run_threads(&g, &cfg);
        let (r_out, _) = run_reference(&g, 2, cfg.seed, RunMode::FullGame, None);
        assert_eq!(out.client_jobs, r_out.client_jobs);
    }
}
