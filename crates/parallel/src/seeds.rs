//! Per-job seed derivation — the cross-backend determinism contract.
//!
//! The derivations now live in [`nmcs_core::seeds`] (so the unified
//! `SearchSpec` front door can drive the parallel strategies without a
//! dependency inversion); this module re-exports them under their
//! historical path. The constants are pinned: every backend — threaded
//! runtime, discrete-event simulator, in-core executors, sequential
//! reference — derives identical per-job seeds, which the agreement
//! tests assert.

pub use nmcs_core::seeds::{client_seed, median_seed, slot_seed};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_the_core_derivations() {
        assert_eq!(
            median_seed(42, 1, 2),
            nmcs_core::seeds::median_seed(42, 1, 2)
        );
        assert_eq!(client_seed(7, 3, 4), nmcs_core::seeds::client_seed(7, 3, 4));
        assert_eq!(
            slot_seed(1, 2, 3, 4),
            nmcs_core::seeds::slot_seed(1, 2, 3, 4)
        );
    }
}
