//! Synthetic trace generation — the *model mode* for paper-scale tables.
//!
//! A real level-4 trace would take days of compute to record (the paper's
//! own level-4 sequential run took 28 hours for the first move alone,
//! Table I). The speedup *shape* of Tables II–VI, however, depends only on
//! the fork-join structure and the distribution of client-job service
//! times — not on the actual Morpion scores. This module generates traces
//! with the measured structure of real searches:
//!
//! * the root game shortens as it progresses (branching decays roughly
//!   linearly in the move number, reaching zero at the final length);
//! * a client job evaluating a position at depth `m` costs roughly
//!   `demand0 · ((T − m)/T)^γ` work units — deeper positions have shorter
//!   remaining games and fewer moves per step, so jobs shrink polynomially
//!   (γ ≈ 3 fits measured level-1 job costs: remaining steps × branching ×
//!   playout length each decay roughly linearly);
//! * multiplicative lognormal noise matches the run-to-run variance the
//!   paper reports as standard deviations.
//!
//! The bench crate calibrates `demand0`, `γ`, and the branching profile
//! against real measured traces at affordable levels (see
//! EXPERIMENTS.md), then extrapolates `demand0` to level 4 with the
//! measured ~200× per-level cost ratio.

use crate::trace::{ClientJob, MedianStepTrace, MedianTrace, RootStepTrace, RunMode, SearchTrace};
use nmcs_core::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceModel {
    /// Final game length `T` (Morpion 5D level-3/4 games reach ≈ 70–80).
    pub game_len: usize,
    /// Branching factor at depth 0 (standard cross: 28).
    pub branching0: f64,
    /// Mean client-job demand (work units) for a depth-0 position.
    pub demand0: f64,
    /// Polynomial decay exponent of job demand with depth.
    pub gamma: f64,
    /// Lognormal sigma of job-demand noise.
    pub sigma: f64,
}

impl TraceModel {
    /// A model calibrated for "level-3-like" workloads on the standard
    /// cross (client jobs are level-1 searches). `demand0` is in work
    /// units; the cluster's `ns_per_unit` scales it to time.
    pub fn level3_like() -> Self {
        Self {
            game_len: 72,
            branching0: 28.0,
            demand0: 20_000.0,
            gamma: 3.0,
            sigma: 0.35,
        }
    }

    /// A "level-4-like" model: client jobs are level-2 searches, ≈ 200×
    /// costlier (the measured per-level cost ratio; the paper reports 207×
    /// between levels 3 and 4).
    pub fn level4_like() -> Self {
        Self {
            demand0: 4_000_000.0,
            ..Self::level3_like()
        }
    }

    /// Mean branching factor at depth `m`: linear decay to zero at `T`.
    pub fn branching(&self, m: usize) -> f64 {
        let t = self.game_len as f64;
        (self.branching0 * (1.0 - m as f64 / t)).max(0.0)
    }

    /// Mean client-job demand for a position at depth `m`.
    pub fn demand(&self, m: usize) -> f64 {
        let t = self.game_len as f64;
        let frac = ((t - m as f64) / t).max(0.0);
        (self.demand0 * frac.powf(self.gamma)).max(1.0)
    }

    /// Generates a synthetic trace. Scores are structural placeholders
    /// (timing replay never reads them).
    pub fn synthesize(&self, mode: RunMode, seed: u64) -> SearchTrace {
        assert!(self.game_len >= 2);
        let mut rng = Rng::seeded(seed);
        let root_steps = match mode {
            RunMode::FirstMove => 1,
            RunMode::FullGame => self.game_len,
        };

        let mut steps = Vec::with_capacity(root_steps);
        let mut total_work = 0u64;
        let mut client_jobs = 0u64;
        for s in 0..root_steps {
            let width = self.sample_branching(s, &mut rng);
            if width == 0 {
                break;
            }
            let mut medians = Vec::with_capacity(width);
            for _ in 0..width {
                medians.push(self.synth_median_game(
                    s + 1,
                    &mut rng,
                    &mut total_work,
                    &mut client_jobs,
                ));
            }
            steps.push(RootStepTrace { medians });
        }

        SearchTrace {
            level: 0, // synthetic: no real level
            seed,
            mode,
            steps,
            score: 0,
            total_work,
            client_jobs,
        }
    }

    fn sample_branching(&self, depth: usize, rng: &mut Rng) -> usize {
        let mean = self.branching(depth);
        if mean <= 0.0 {
            return 0;
        }
        // Small integer jitter around the mean keeps step widths realistic
        // without a heavy distribution.
        let jitter = (rng.unit_f64() - 0.5) * mean * 0.2;
        (mean + jitter).round().max(1.0) as usize
    }

    fn synth_median_game(
        &self,
        start_depth: usize,
        rng: &mut Rng,
        total_work: &mut u64,
        client_jobs: &mut u64,
    ) -> MedianTrace {
        let mut steps = Vec::new();
        let mut depth = start_depth;
        while depth < self.game_len {
            let width = self.sample_branching(depth, rng);
            if width == 0 {
                break;
            }
            let mut jobs = Vec::with_capacity(width);
            for _ in 0..width {
                let demand = self.sample_demand(depth + 1, rng);
                *total_work += demand;
                *client_jobs += 1;
                jobs.push(ClientJob {
                    demand,
                    moves_played: depth as u64 + 1,
                    score: 0,
                });
            }
            steps.push(MedianStepTrace { jobs });
            depth += 1;
        }
        MedianTrace {
            steps,
            result_score: 0,
        }
    }

    fn sample_demand(&self, depth: usize, rng: &mut Rng) -> u64 {
        let mean = self.demand(depth);
        // Lognormal multiplicative noise with unit median; Box–Muller from
        // two uniform draws.
        let u1 = rng.unit_f64().max(1e-12);
        let u2 = rng.unit_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        ((mean * (self.sigma * z).exp()).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_decay_with_depth() {
        let m = TraceModel::level3_like();
        assert!(m.branching(0) > m.branching(30));
        assert!(m.branching(30) > m.branching(60));
        assert!(m.demand(0) > m.demand(30));
        assert!(m.demand(30) > m.demand(60));
        assert_eq!(m.branching(m.game_len), 0.0);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let m = TraceModel::level3_like();
        let a = m.synthesize(RunMode::FirstMove, 42);
        let b = m.synthesize(RunMode::FirstMove, 42);
        assert_eq!(a, b);
        let c = m.synthesize(RunMode::FirstMove, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn first_move_has_one_root_step_with_realistic_width() {
        let m = TraceModel::level3_like();
        let t = m.synthesize(RunMode::FirstMove, 1);
        assert_eq!(t.steps.len(), 1);
        let w = t.steps[0].medians.len();
        assert!((20..=36).contains(&w), "width {w} should be near 28");
        assert_eq!(t.client_jobs as usize, count_jobs(&t));
    }

    fn count_jobs(t: &SearchTrace) -> usize {
        t.steps
            .iter()
            .flat_map(|s| &s.medians)
            .flat_map(|m| &m.steps)
            .map(|st| st.jobs.len())
            .sum()
    }

    #[test]
    fn full_game_is_an_order_of_magnitude_bigger_than_first_move() {
        let m = TraceModel {
            game_len: 40,
            ..TraceModel::level3_like()
        };
        let first = m.synthesize(RunMode::FirstMove, 7);
        let full = m.synthesize(RunMode::FullGame, 7);
        // Paper Table I: one rollout ≈ 9× the first move.
        let ratio = full.total_work as f64 / first.total_work as f64;
        assert!(
            (3.0..40.0).contains(&ratio),
            "full/first work ratio {ratio} out of plausible band"
        );
    }

    #[test]
    fn level4_jobs_are_hundreds_of_times_heavier() {
        let l3 = TraceModel::level3_like();
        let l4 = TraceModel::level4_like();
        let r = l4.demand0 / l3.demand0;
        assert!((100.0..400.0).contains(&r));
    }

    #[test]
    fn demand_noise_is_multiplicative_and_positive() {
        let m = TraceModel::level3_like();
        let mut rng = Rng::seeded(3);
        for _ in 0..100 {
            let d = m.sample_demand(10, &mut rng);
            assert!(d >= 1);
        }
    }

    #[test]
    fn moves_played_hints_track_depth() {
        let m = TraceModel {
            game_len: 20,
            ..TraceModel::level3_like()
        };
        let t = m.synthesize(RunMode::FirstMove, 5);
        for med in &t.steps[0].medians {
            for (i, step) in med.steps.iter().enumerate() {
                for j in &step.jobs {
                    assert_eq!(j.moves_played, (i + 2) as u64, "median starts at depth 1");
                }
            }
        }
    }
}
