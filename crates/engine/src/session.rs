//! Engine-held warm search sessions.
//!
//! A session pins one [`nmcs_core::SearchSession`] (position + warm
//! tree + transposition table) inside the engine so a tenant can step
//! the same game across many requests without re-growing the tree from
//! scratch each time. Steps run as ordinary replica jobs on the worker
//! pool — same queue, same backpressure, same cancellation — but
//! instead of a one-shot `spec.search`, the worker locks the session's
//! slot and advances it one committed move.
//!
//! Lifecycle is access-driven, the same no-reaper idiom as the serve
//! layer's job directory: every `open`/`submit` sweeps the table,
//! dropping sessions idle past their TTL and — when the summed warm
//! bytes exceed the memory bound — evicting idle sessions oldest-touch
//! first. Sessions with a step in flight are never swept; a step's job
//! holds its own reference, so even a concurrent `close` only unlists
//! the session (the running step completes normally).

use nmcs_core::metrics::monotonic_now;
use nmcs_core::{DynGame, Score, SearchSession};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine-assigned session identifier (unique per [`crate::Engine`]).
pub type SessionId = u64;

/// Bounds on the engine's session table. Settable at runtime via
/// [`crate::Engine::set_session_limits`] (the serve layer applies its
/// config at startup); defaults are deliberately conservative.
#[derive(Debug, Clone)]
pub struct SessionLimits {
    /// Idle time after which a session is expired by the next sweep.
    pub ttl: Duration,
    /// Hard cap on open sessions; opening past it evicts the
    /// least-recently-touched idle session, or fails if all are busy.
    pub max_sessions: usize,
    /// Bound on the summed approximate warm bytes across sessions;
    /// sweeps evict idle sessions oldest-touch first until back under.
    pub max_bytes: usize,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            ttl: Duration::from_secs(300),
            max_sessions: 64,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Unknown id — never opened, closed, expired, or evicted.
    NoSuchSession(SessionId),
    /// The session already has a step queued or running; steps are
    /// strictly serial per session (the warm tree is single-writer
    /// between commits).
    StepInFlight(SessionId),
    /// The table is at `max_sessions` and every session is busy, so
    /// nothing could be evicted to make room.
    AtCapacity { open: usize, max: usize },
    /// The engine refused the step's job submission.
    Submit(crate::SubmitError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoSuchSession(id) => write!(f, "no such session {id}"),
            SessionError::StepInFlight(id) => {
                write!(f, "session {id} already has a step in flight")
            }
            SessionError::AtCapacity { open, max } => {
                write!(f, "session table at capacity ({open} of {max}, none idle)")
            }
            SessionError::Submit(e) => write!(f, "session step submission failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A point-in-time view of one session, readable without touching the
/// session's slot lock (the fields are caches the worker refreshes
/// after every step), so polling never waits behind a running search.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    pub id: SessionId,
    pub tenant: String,
    /// Steps taken so far (terminal no-ops included).
    pub steps: usize,
    /// Moves committed so far.
    pub committed: usize,
    /// Score of the current (post-commit) position.
    pub score: Score,
    /// Whether the position is terminal.
    pub done: bool,
    /// Whether steps run on a warm tree (the spec's `tree_reuse` knob).
    pub warm: bool,
    /// Approximate warm-tree + transposition-table bytes.
    pub bytes: usize,
    /// Whether a step is currently queued or running.
    pub busy: bool,
}

/// Aggregate session-table counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently open (the `engine_sessions` gauge).
    pub open: usize,
    /// Summed approximate warm bytes (the `engine_session_bytes` gauge).
    pub bytes: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions dropped by TTL expiry.
    pub expired: u64,
    /// Sessions evicted under the count or byte bound.
    pub evicted: u64,
}

/// One open session: the slot the worker steps, plus lock-free caches
/// of everything pollers ask about.
pub(crate) struct SessionEntry {
    pub id: SessionId,
    pub tenant: String,
    /// The session itself. Held only by the worker running a step (and
    /// briefly by `submit_session` to clone the job's spec/position);
    /// `step_inflight` serialises those so the lock is never contended.
    pub slot: Mutex<SearchSession<DynGame>>,
    /// Last open/submit/step-completion time; the TTL and LRU key.
    last_touch: Mutex<Instant>,
    /// Caches refreshed by the worker after each step.
    pub bytes: AtomicUsize,
    pub steps: AtomicUsize,
    pub committed: AtomicUsize,
    pub score: AtomicI64,
    pub done: AtomicBool,
    pub warm: bool,
    /// True from submission until the step's replica finishes; busy
    /// sessions are never expired or evicted.
    pub step_inflight: AtomicBool,
}

impl SessionEntry {
    pub fn touch(&self) {
        *self.last_touch.lock() = monotonic_now();
    }

    fn idle_for(&self) -> Duration {
        self.last_touch.lock().elapsed()
    }

    /// Refreshes every poller-visible cache from the slot. Called by
    /// the worker with the slot already locked.
    pub fn refresh_caches(&self, slot: &SearchSession<DynGame>) {
        self.bytes.store(slot.approx_bytes(), Ordering::Relaxed);
        self.steps.store(slot.steps(), Ordering::Relaxed);
        self.committed
            .store(slot.committed().len(), Ordering::Relaxed);
        self.score.store(slot.score(), Ordering::Relaxed);
        self.done.store(slot.is_done(), Ordering::Relaxed);
    }

    pub fn info(&self) -> SessionInfo {
        SessionInfo {
            id: self.id,
            tenant: self.tenant.clone(),
            steps: self.steps.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            score: self.score.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Relaxed),
            warm: self.warm,
            bytes: self.bytes.load(Ordering::Relaxed),
            busy: self.step_inflight.load(Ordering::Acquire),
        }
    }
}

/// The engine's session table. All mutation happens under the one
/// entries lock; sweeps are short (no search work, no slot locks).
pub(crate) struct SessionTable {
    entries: Mutex<Vec<Arc<SessionEntry>>>,
    limits: Mutex<SessionLimits>,
    next_id: AtomicU64,
    opened: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
}

impl SessionTable {
    pub fn new() -> Self {
        SessionTable {
            entries: Mutex::new(Vec::new()),
            limits: Mutex::new(SessionLimits::default()),
            next_id: AtomicU64::new(1),
            opened: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    pub fn set_limits(&self, limits: SessionLimits) {
        *self.limits.lock() = limits;
    }

    pub fn limits(&self) -> SessionLimits {
        self.limits.lock().clone()
    }

    /// Removes the least-recently-touched idle entry; returns whether
    /// anything could be evicted.
    fn evict_one(entries: &mut Vec<Arc<SessionEntry>>, evicted: &AtomicU64) -> bool {
        let victim = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.step_inflight.load(Ordering::Acquire))
            .max_by_key(|(_, e)| e.idle_for())
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                entries.remove(i);
                evicted.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// The access-driven sweep: TTL expiry first, then byte-bound
    /// eviction (idle sessions, oldest touch first) until back under
    /// the memory bound. Busy sessions are untouchable in both phases.
    pub fn sweep(&self) {
        let limits = self.limits();
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|e| e.step_inflight.load(Ordering::Acquire) || e.idle_for() <= limits.ttl);
        self.expired
            .fetch_add((before - entries.len()) as u64, Ordering::Relaxed);
        let total =
            |es: &[Arc<SessionEntry>]| es.iter().map(|e| e.bytes.load(Ordering::Relaxed)).sum();
        let mut bytes: usize = total(&entries);
        while bytes > limits.max_bytes {
            if !Self::evict_one(&mut entries, &self.evicted) {
                break; // everything left is busy
            }
            bytes = total(&entries);
        }
    }

    /// Registers a fresh session, evicting an idle LRU entry if the
    /// table is at its count cap. The caller sweeps first.
    pub fn open(
        &self,
        tenant: &str,
        session: SearchSession<DynGame>,
    ) -> Result<Arc<SessionEntry>, SessionError> {
        let limits = self.limits();
        let mut entries = self.entries.lock();
        while entries.len() >= limits.max_sessions.max(1) {
            if !Self::evict_one(&mut entries, &self.evicted) {
                return Err(SessionError::AtCapacity {
                    open: entries.len(),
                    max: limits.max_sessions,
                });
            }
        }
        let entry = Arc::new(SessionEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            tenant: tenant.to_string(),
            bytes: AtomicUsize::new(session.approx_bytes()),
            steps: AtomicUsize::new(session.steps()),
            committed: AtomicUsize::new(session.committed().len()),
            score: AtomicI64::new(session.score()),
            done: AtomicBool::new(session.is_done()),
            warm: session.is_warm(),
            step_inflight: AtomicBool::new(false),
            last_touch: Mutex::new(monotonic_now()),
            slot: Mutex::new(session),
        });
        entries.push(entry.clone());
        self.opened.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    pub fn get(&self, id: SessionId) -> Option<Arc<SessionEntry>> {
        self.entries.lock().iter().find(|e| e.id == id).cloned()
    }

    /// Unlists a session. A step already in flight completes on its own
    /// reference; its results are still delivered through its handle.
    pub fn close(&self, id: SessionId) -> bool {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|e| e.id != id);
        entries.len() < before
    }

    pub fn tenant_sessions(&self, tenant: &str) -> usize {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.tenant == tenant)
            .count()
    }

    pub fn stats(&self) -> SessionStats {
        let entries = self.entries.lock();
        SessionStats {
            open: entries.len(),
            bytes: entries
                .iter()
                .map(|e| e.bytes.load(Ordering::Relaxed))
                .sum(),
            opened: self.opened.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}
