//! # nmcs-engine — a concurrent multi-tenant search service
//!
//! The paper's cluster NMCS answers *one* search as fast as a cluster
//! allows. This crate answers *many*: a long-running [`Engine`] accepts
//! heterogeneous search jobs — any game (via the object-safe
//! [`nmcs_core::DynGame`] erasure) × any strategy of the unified search
//! API ([`Algorithm`] *is* [`nmcs_core::AlgorithmSpec`]) — on a bounded
//! submission queue and executes them on a shared work-stealing worker
//! pool. A job is "a [`nmcs_core::SearchSpec`] applied to an erased
//! game" ([`JobSpec::from_spec`]), so algorithm, tunables, budget, and
//! seed travel as one serde-able value.
//!
//! Properties the service layer guarantees:
//!
//! * **Determinism** — a job's result is bit-identical to
//!   `spec.run(&game)` with the job's seed; ensemble replicas derive
//!   their seeds through `parallel_nmcs::seeds`, the same scheme the
//!   cluster backends use (see [`scheduler`]).
//! * **Backpressure** — the queue is bounded; [`Engine::submit`] blocks
//!   when full, [`Engine::try_submit`] fails fast, and queued memory is
//!   bounded by `queue_capacity` tasks
//!   ([`EngineStats::peak_queue_depth`] is the witness).
//! * **Prompt cancellation** — [`JobHandle::cancel`] trips a
//!   [`nmcs_core::CancelToken`] polled inside every search loop at
//!   playout-move granularity, so even a deep NMCS returns within
//!   microseconds of the request.
//! * **Budgets** — [`JobSpec::with_budget`] bounds each replica by
//!   deadline / playout cap / node cap; budget-interrupted replicas
//!   keep their (replayable) best-so-far result, with the reason in
//!   [`ReplicaResult::interrupted`].
//! * **Streaming progress** — [`JobHandle::poll_progress`] returns
//!   monotone snapshots (replicas done, best-so-far score, work units).
//! * **Diversified ensembles** — root-parallel replica jobs perturb
//!   per-replica seeds (and optionally NMCS memory policies), and the
//!   scheduler consults an in-flight registry so duplicate submissions
//!   explore fresh trajectories instead of repeating identical work —
//!   the WU-UCT observation applied to job scheduling.
//!
//! ## Example
//!
//! ```
//! use nmcs_engine::{Algorithm, Engine, EngineConfig, JobSpec};
//! use nmcs_games::SumGame;
//!
//! let engine = Engine::start(EngineConfig { workers: 2, queue_capacity: 16 }).unwrap();
//! let handle = engine
//!     .submit(JobSpec::new(
//!         "demo",
//!         SumGame::random(5, 3, 1),
//!         Algorithm::nested(1),
//!         2009,
//!     ))
//!     .unwrap();
//! let output = handle.join();
//! assert!(output.score().unwrap() > 0);
//! engine.shutdown();
//! ```

mod handle;
mod job;
mod pool;
mod queue;
pub mod scheduler;
pub mod session;

pub use handle::JobHandle;
pub use job::{Algorithm, JobId, JobOutput, JobSpec, JobState, Progress, ReplicaResult};
pub use scheduler::ReplicaPlan;
pub use session::{SessionError, SessionId, SessionInfo, SessionLimits, SessionStats};

use handle::JobCore;
use nmcs_core::metrics::{EngineSnapshot, HistogramSnapshot, MetricsSnapshot};
use nmcs_core::{CodedGame, DynGame, SearchSession, SearchSpec};
use pool::{spawn_workers, PoolShared, Task};
use queue::PushError;
use scheduler::InFlight;
use session::{SessionEntry, SessionTable};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Capacity of the submission queue, counted in *replica tasks*.
    /// This bounds the engine's queued memory and is the backpressure
    /// threshold.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(8),
            queue_capacity: 256,
        }
    }
}

/// Why an engine failed to start.
#[derive(Debug)]
pub enum EngineError {
    /// The configuration cannot produce a working engine (`workers == 0`
    /// would build a pool that never runs a job; `queue_capacity == 0`
    /// would make every submission unadmittable). Validated up front so
    /// the failure is a typed error, not a queue assertion panic or a
    /// silent hang.
    InvalidConfig {
        /// Human-readable description of the rejected field.
        reason: &'static str,
    },
    /// The OS refused a worker thread; already-spawned workers were shut
    /// down and joined before this was returned.
    WorkerSpawn(std::io::Error),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            EngineError::WorkerSpawn(e) => write!(f, "failed to spawn engine worker: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::WorkerSpawn(e) => Some(e),
            EngineError::InvalidConfig { .. } => None,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// `try_submit` found fewer free queue slots than the job has
    /// replicas, or a blocking `submit` was given a job with more
    /// replicas than the queue's total capacity (nothing was admitted
    /// in either case).
    QueueFull { capacity: usize, requested: usize },
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull {
                capacity,
                requested,
            } => write!(
                f,
                "submission queue full (capacity {capacity}, job needs {requested} slots)"
            ),
            SubmitError::ShuttingDown => f.write_str("engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A point-in-time snapshot of engine counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    pub workers: usize,
    pub queue_capacity: usize,
    pub queue_depth: usize,
    /// Highest queue depth ever observed (≤ `queue_capacity`, always).
    pub peak_queue_depth: usize,
    pub submitted_jobs: u64,
    pub completed_jobs: u64,
    pub cancelled_jobs: u64,
    /// Jobs that ended [`JobState::Failed`] because a replica panicked.
    pub failed_jobs: u64,
    pub executed_tasks: u64,
    /// Replica tasks skipped because their job was cancelled.
    pub skipped_tasks: u64,
    /// Tasks a worker stole from a sibling's deque.
    pub stolen_tasks: u64,
    /// Search work units executed on behalf of completed replicas.
    pub total_work_units: u64,
    /// `try_submit` calls refused by backpressure.
    pub rejected_submissions: u64,
    /// Replica signatures currently registered (queued or running).
    pub in_flight_replicas: usize,
}

/// The multi-tenant search service. See the crate docs.
pub struct Engine {
    shared: Arc<PoolShared>,
    in_flight: Arc<InFlight>,
    sessions: Arc<SessionTable>,
    next_id: AtomicU64,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts the worker pool.
    ///
    /// Validates the configuration first — `workers: 0` (a pool that can
    /// never run a job) and `queue_capacity: 0` (a queue that can never
    /// admit one) return [`EngineError::InvalidConfig`] instead of
    /// panicking or hanging — and degrades gracefully if the OS refuses
    /// a worker thread ([`EngineError::WorkerSpawn`]).
    pub fn start(config: EngineConfig) -> Result<Self, EngineError> {
        if config.workers == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "workers must be >= 1",
            });
        }
        if config.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "queue_capacity must be >= 1",
            });
        }
        let in_flight = Arc::new(InFlight::default());
        let shared = PoolShared::new(config.workers, config.queue_capacity, in_flight.clone());
        let workers = spawn_workers(&shared).map_err(EngineError::WorkerSpawn)?;
        Ok(Engine {
            shared,
            in_flight,
            sessions: Arc::new(SessionTable::new()),
            next_id: AtomicU64::new(1),
            workers,
        })
    }

    fn admit(&self, spec: JobSpec) -> (Arc<JobCore>, Vec<Task>) {
        self.admit_with(spec, None)
    }

    fn admit_with(
        &self,
        spec: JobSpec,
        session: Option<Arc<SessionEntry>>,
    ) -> (Arc<JobCore>, Vec<Task>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let plans = self.in_flight.plan_job(&spec);
        let core = JobCore::new(id, spec, plans, session);
        // Weak-register for the inspector's stall scan (weak refs do not
        // block the spec recovery `Arc::try_unwrap` on rejection).
        self.shared.registry.track(&core);
        let tasks = (0..core.spec.replicas)
            .map(|replica| Task {
                job: core.clone(),
                replica,
            })
            .collect();
        (core, tasks)
    }

    fn rollback(&self, core: &Arc<JobCore>) {
        for plan in &core.plans {
            self.in_flight.release(plan.signature);
        }
    }

    /// Submits a job, **blocking** while the queue is full
    /// (backpressure). The whole replica batch is admitted atomically:
    /// a `submit` racing `close()` either lands every replica or
    /// returns [`SubmitError::ShuttingDown`] with nothing enqueued —
    /// it never hangs, and never leaves a job half-admitted for the
    /// workers to cancel. Fails with [`SubmitError::QueueFull`] only
    /// when the job has more replicas than the queue has slots (waiting
    /// could never succeed).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let (core, tasks) = self.admit(spec);
        let n = tasks.len();
        // Count the tasks as outstanding *before* they become poppable —
        // a fast worker could otherwise finish one and decrement the
        // counter below zero.
        self.shared.outstanding.fetch_add(n, Ordering::AcqRel);
        match self.shared.injector.push_all(tasks) {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted_jobs
                    .fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { core })
            }
            Err((push_error, rejected_tasks)) => {
                self.shared.outstanding.fetch_sub(n, Ordering::AcqRel);
                self.rollback(&core);
                drop(rejected_tasks);
                match push_error {
                    PushError::Full => {
                        self.shared
                            .metrics
                            .rejected_submissions
                            .fetch_add(1, Ordering::Relaxed);
                        Err(SubmitError::QueueFull {
                            capacity: self.shared.injector.capacity(),
                            requested: n,
                        })
                    }
                    PushError::Closed => Err(SubmitError::ShuttingDown),
                }
            }
        }
    }

    /// Submits a job without blocking: if the queue lacks room for
    /// *every* replica, nothing is admitted and the caller gets
    /// [`SubmitError::QueueFull`] **with the spec handed back**, so the
    /// retry-with-blocking-`submit` fallback needs no upfront clone of
    /// the game position.
    // Handing the (large) spec back on rejection is the point of this
    // API — the caller resubmits it without cloning the game.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, (SubmitError, JobSpec)> {
        let (core, tasks) = self.admit(spec);
        let n = tasks.len();
        // Count the tasks as outstanding *before* they become poppable —
        // a fast worker could otherwise finish one and decrement the
        // counter below zero. Both error arms give the pre-count back.
        self.shared.outstanding.fetch_add(n, Ordering::AcqRel);
        match self.shared.injector.try_push_all(tasks) {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted_jobs
                    .fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { core })
            }
            Err((push_error, rejected_tasks)) => {
                self.shared.outstanding.fetch_sub(n, Ordering::AcqRel);
                self.rollback(&core);
                let error = match push_error {
                    PushError::Full => {
                        self.shared
                            .metrics
                            .rejected_submissions
                            .fetch_add(1, Ordering::Relaxed);
                        SubmitError::QueueFull {
                            capacity: self.shared.injector.capacity(),
                            requested: n,
                        }
                    }
                    PushError::Closed => SubmitError::ShuttingDown,
                };
                // Nothing was admitted, so the rejected tasks hold the
                // only other references to the core; dropping them lets
                // the spec be recovered without a clone.
                drop(rejected_tasks);
                let spec = Arc::try_unwrap(core)
                    .unwrap_or_else(|_| unreachable!("rejected job leaked a reference"))
                    .spec;
                Err((error, spec))
            }
        }
    }

    /// Opens a warm-tree session over a typed game: the engine keeps a
    /// [`SearchSession`] (position + warm tree + transposition table,
    /// when the spec's `tree_reuse` knob is on) between requests, and
    /// each [`Engine::submit_session`] advances it one committed move.
    /// Sessions expire after the configured idle TTL and are evicted
    /// LRU-first under the table's count/byte bounds
    /// ([`Engine::set_session_limits`]).
    pub fn open_session<G>(
        &self,
        tenant: &str,
        game: G,
        spec: SearchSpec,
    ) -> Result<SessionId, SessionError>
    where
        G: CodedGame + Send + Sync + 'static,
        G::Move: Send + Sync,
    {
        self.open_session_dyn(tenant, DynGame::new(game), spec, None)
    }

    /// [`Engine::open_session`] over an already-erased game, with an
    /// optional per-session transposition-table byte bound (`None` uses
    /// the core default).
    pub fn open_session_dyn(
        &self,
        tenant: &str,
        game: DynGame,
        spec: SearchSpec,
        table_bytes: Option<usize>,
    ) -> Result<SessionId, SessionError> {
        self.sessions.sweep();
        let session = SearchSession::new(game, spec, table_bytes);
        self.sessions.open(tenant, session).map(|e| e.id)
    }

    /// Submits one session step as a regular engine job (same bounded
    /// queue, same backpressure, same cancellation). The job's result
    /// is the step's search report: the full best line found from the
    /// pre-step position, whose head was committed. Steps are strictly
    /// serial per session — a second submission while one is in flight
    /// returns [`SessionError::StepInFlight`].
    pub fn submit_session(&self, id: SessionId) -> Result<JobHandle, SessionError> {
        self.sessions.sweep();
        let entry = self
            .sessions
            .get(id)
            .ok_or(SessionError::NoSuchSession(id))?;
        if entry.step_inflight.swap(true, Ordering::AcqRel) {
            return Err(SessionError::StepInFlight(id));
        }
        entry.touch();
        // The job mirrors the session's spec and current position (the
        // position clone feeds the tenant/domain metrics and replays;
        // the step itself runs on the session's own game).
        let spec = {
            let slot = entry.slot.lock();
            JobSpec {
                name: entry.tenant.clone(),
                game: slot.game().clone(),
                algorithm: slot.spec().algorithm.clone(),
                seed: slot.spec().seed,
                budget: slot.spec().budget.clone(),
                replicas: 1,
                diversify_policies: false,
            }
        };
        let (core, tasks) = self.admit_with(spec, Some(entry.clone()));
        let n = tasks.len();
        self.shared.outstanding.fetch_add(n, Ordering::AcqRel);
        match self.shared.injector.push_all(tasks) {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted_jobs
                    .fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { core })
            }
            Err((push_error, rejected_tasks)) => {
                self.shared.outstanding.fetch_sub(n, Ordering::AcqRel);
                self.rollback(&core);
                drop(rejected_tasks);
                entry.step_inflight.store(false, Ordering::Release);
                let error = match push_error {
                    PushError::Full => {
                        self.shared
                            .metrics
                            .rejected_submissions
                            .fetch_add(1, Ordering::Relaxed);
                        SubmitError::QueueFull {
                            capacity: self.shared.injector.capacity(),
                            requested: n,
                        }
                    }
                    PushError::Closed => SubmitError::ShuttingDown,
                };
                Err(SessionError::Submit(error))
            }
        }
    }

    /// Unlists a session. A step already in flight completes normally
    /// on its own reference. Returns whether the id was open.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.sessions.close(id)
    }

    /// A lock-free snapshot of one session (never waits on a running
    /// step), or `None` if the id is not open.
    pub fn session_info(&self, id: SessionId) -> Option<SessionInfo> {
        self.sessions.get(id).map(|e| e.info())
    }

    /// Sweeps (TTL expiry + byte-bound eviction) and returns the
    /// session-table counters.
    pub fn session_stats(&self) -> SessionStats {
        self.sessions.sweep();
        self.sessions.stats()
    }

    /// Replaces the session-table bounds and applies them immediately
    /// (an over-bound table evicts on this very call).
    pub fn set_session_limits(&self, limits: SessionLimits) {
        self.sessions.set_limits(limits);
        self.sessions.sweep();
    }

    /// The current session-table bounds.
    pub fn session_limits(&self) -> SessionLimits {
        self.sessions.limits()
    }

    /// Open sessions belonging to `tenant` — the serve layer's session
    /// quota gauge.
    pub fn tenant_sessions(&self, tenant: &str) -> usize {
        self.sessions.tenant_sessions(tenant)
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        let m = &self.shared.metrics;
        EngineStats {
            workers: self.shared.locals.len(),
            queue_capacity: self.shared.injector.capacity(),
            queue_depth: self.shared.injector.len(),
            peak_queue_depth: self.shared.injector.peak(),
            submitted_jobs: m.submitted_jobs.load(Ordering::Relaxed),
            completed_jobs: m.completed_jobs.load(Ordering::Relaxed),
            cancelled_jobs: m.cancelled_jobs.load(Ordering::Relaxed),
            failed_jobs: m.failed_jobs.load(Ordering::Relaxed),
            executed_tasks: m.executed_tasks.load(Ordering::Relaxed),
            skipped_tasks: m.skipped_tasks.load(Ordering::Relaxed),
            stolen_tasks: m.stolen_tasks.load(Ordering::Relaxed),
            total_work_units: m.total_work_units.load(Ordering::Relaxed),
            rejected_submissions: m.rejected_submissions.load(Ordering::Relaxed),
            in_flight_replicas: self.in_flight.len(),
        }
    }

    /// The searchable inspector: one serde-round-trippable
    /// [`MetricsSnapshot`] spanning all three instrumented layers — the
    /// process-wide executor pool (parks / steals / wakeups / per-worker
    /// busy-vs-idle clocks), the search layer (playout rates, budget
    /// trips, per-backend wall-time percentiles), and this engine
    /// (queue-wait vs run-time split, per-tenant / per-domain
    /// histograms, the bounded dead-letter record, and a stall scan
    /// flagging running jobs past their deadline estimate).
    ///
    /// Reads atomics and takes only the short DLQ / job-list locks;
    /// never blocks a search and never touches any search RNG.
    pub fn inspector(&self) -> MetricsSnapshot {
        let m = &self.shared.metrics;
        let reg = &self.shared.registry;
        let mut stalled = Vec::new();
        {
            let mut jobs = reg.jobs.lock();
            jobs.retain(|w| w.strong_count() > 0);
            for weak in jobs.iter() {
                if let Some(job) = weak.upgrade() {
                    stalled.extend(job.stalled());
                }
            }
        }
        let sessions = self.sessions.stats();
        let engine = EngineSnapshot {
            submitted_jobs: m.submitted_jobs.load(Ordering::Relaxed),
            completed_jobs: m.completed_jobs.load(Ordering::Relaxed),
            cancelled_jobs: m.cancelled_jobs.load(Ordering::Relaxed),
            failed_jobs: m.failed_jobs.load(Ordering::Relaxed),
            rejected_submissions: m.rejected_submissions.load(Ordering::Relaxed),
            executed_tasks: m.executed_tasks.load(Ordering::Relaxed),
            skipped_tasks: m.skipped_tasks.load(Ordering::Relaxed),
            stolen_tasks: m.stolen_tasks.load(Ordering::Relaxed),
            total_work_units: m.total_work_units.load(Ordering::Relaxed),
            queue_depth: self.shared.injector.len() as u64,
            queue_wait: reg.queue_wait.snapshot(),
            run_time: reg.run_time.snapshot(),
            tenants: reg.tenants.snapshot(),
            domains: reg.domains.snapshot(),
            dead_letters: reg.dlq.snapshot(),
            dlq_dropped: reg.dlq.dropped(),
            stalled,
            tag_collisions: reg.tenants.collisions() + reg.domains.collisions(),
            sessions: sessions.open as u64,
            session_bytes: sessions.bytes as u64,
            sessions_opened: sessions.opened,
            sessions_expired: sessions.expired,
            sessions_evicted: sessions.evicted,
        };
        let mut snapshot = nmcs_core::metrics::snapshot();
        snapshot.engine = Some(engine);
        snapshot
    }

    /// Queue-wait latency summary alone (time from submission to first
    /// replica pickup) — the input an admission controller polls per
    /// request, far cheaper than a full [`Engine::inspector`] snapshot.
    pub fn queue_wait_snapshot(&self) -> HistogramSnapshot {
        self.shared.registry.queue_wait.snapshot()
    }

    /// Begins shutdown without consuming the engine: no new jobs are
    /// accepted (submitters — including ones *blocked* in [`Engine::submit`]
    /// on a full queue — wake with [`SubmitError::ShuttingDown`]), while
    /// everything already admitted still drains. Workers exit once
    /// drained; they are joined by [`Engine::shutdown`] or drop.
    pub fn close(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.injector.close();
    }

    /// Stops accepting jobs, drains everything already admitted, and
    /// joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.injector.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

// The unit tests exercise the deprecated shims on purpose (legacy-
// surface regression net; the unified API has its own coverage).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::{nested, NestedConfig, Rng};
    use nmcs_games::{NeedleLadder, SumGame};

    fn engine(workers: usize, cap: usize) -> Engine {
        Engine::start(EngineConfig {
            workers,
            queue_capacity: cap,
        })
        .expect("valid test configuration")
    }

    #[test]
    fn single_job_completes_with_direct_call_score() {
        let e = engine(2, 8);
        let g = SumGame::random(5, 3, 7);
        let h = e
            .submit(JobSpec::new("sum", g.clone(), Algorithm::nested(1), 99))
            .unwrap();
        let out = h.join();
        assert_eq!(out.state, JobState::Completed);
        let direct = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(99));
        assert_eq!(out.score().unwrap(), direct.score);
        e.shutdown();
    }

    #[test]
    fn many_jobs_across_workers() {
        let e = engine(4, 64);
        let handles: Vec<_> = (0..16)
            .map(|i| {
                e.submit(JobSpec::new(
                    format!("job-{i}"),
                    NeedleLadder::new(6),
                    Algorithm::nested(1),
                    1000 + i,
                ))
                .unwrap()
            })
            .collect();
        for h in handles {
            let out = h.join();
            assert_eq!(out.state, JobState::Completed);
            assert_eq!(out.score().unwrap(), NeedleLadder::new(6).optimum());
        }
        let stats = e.stats();
        assert_eq!(stats.completed_jobs, 16);
        assert_eq!(stats.executed_tasks, 16);
        assert_eq!(stats.in_flight_replicas, 0);
        e.shutdown();
    }

    #[test]
    fn progress_reaches_terminal_state() {
        let e = engine(1, 8);
        let h = e
            .submit(
                JobSpec::new("p", SumGame::random(4, 3, 3), Algorithm::nested(1), 5)
                    .with_replicas(3),
            )
            .unwrap();
        let out = h.join();
        assert_eq!(out.state, JobState::Completed);
        assert_eq!(out.replicas.len(), 3);
        assert!(out.replicas.iter().all(|r| r.is_some()));
        // Merge picks the max.
        let best = out.best.as_ref().unwrap();
        let max = out
            .replicas
            .iter()
            .filter_map(|r| r.as_ref().map(|r| r.result.score))
            .max()
            .unwrap();
        assert_eq!(best.result.score, max);
        e.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let e = engine(2, 32);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                e.submit(JobSpec::new(
                    format!("drain-{i}"),
                    SumGame::random(4, 3, i),
                    Algorithm::nested(1),
                    i,
                ))
                .unwrap()
            })
            .collect();
        e.shutdown();
        for h in handles {
            assert_eq!(h.join().state, JobState::Completed);
        }
    }

    #[test]
    fn zero_workers_is_a_typed_error_not_a_hang() {
        match Engine::start(EngineConfig {
            workers: 0,
            queue_capacity: 8,
        }) {
            Err(EngineError::InvalidConfig { reason }) => {
                assert!(reason.contains("workers"), "got reason {reason:?}")
            }
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("expected InvalidConfig, got a running engine"),
        }
    }

    #[test]
    fn zero_queue_capacity_is_a_typed_error_not_a_panic() {
        match Engine::start(EngineConfig {
            workers: 2,
            queue_capacity: 0,
        }) {
            Err(EngineError::InvalidConfig { reason }) => {
                assert!(reason.contains("queue_capacity"), "got reason {reason:?}")
            }
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("expected InvalidConfig, got a running engine"),
        }
    }

    /// A game whose playouts run until an external gate opens: each move
    /// sleeps briefly, and moves keep coming while the gate is closed.
    /// Lets a test pin a worker deterministically.
    #[derive(Clone)]
    struct GateGame {
        release: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl nmcs_core::Game for GateGame {
        type Move = u8;
        fn legal_moves(&self, out: &mut Vec<u8>) {
            if !self.release.load(Ordering::Acquire) {
                out.push(0);
            }
        }
        fn play(&mut self, _mv: &u8) {
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        fn score(&self) -> nmcs_core::Score {
            0
        }
        fn moves_played(&self) -> usize {
            0
        }
    }

    #[test]
    fn blocked_submitter_wakes_with_error_when_engine_closes() {
        let release = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let gate = GateGame {
            release: release.clone(),
        };
        // One worker, one queue slot: job A occupies the worker until the
        // gate opens, job B fills the only slot, so a third submission
        // blocks in `submit` — the regression shape for the shutdown
        // audit (a dropped engine must wake it, not strand it forever).
        let e = engine(1, 1);
        let a = e
            .submit(JobSpec::uncoded(
                "gate-a",
                gate.clone(),
                Algorithm::Sample,
                1,
            ))
            .unwrap();
        // Wait until A is actually running so B occupies the queue slot.
        while a.poll_progress().state != JobState::Running {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let b = e
            .submit(JobSpec::uncoded(
                "gate-b",
                gate.clone(),
                Algorithm::Sample,
                2,
            ))
            .unwrap();

        let blocked = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                e.submit(JobSpec::uncoded(
                    "gate-c",
                    gate.clone(),
                    Algorithm::Sample,
                    3,
                ))
            });
            // Give the submitter time to block on the full queue, then
            // close the engine out from under it (the drop/shutdown path
            // runs exactly this close).
            std::thread::sleep(std::time::Duration::from_millis(30));
            e.close();
            release.store(true, Ordering::Release);
            handle.join().expect("submitter thread must not panic")
        });
        match blocked {
            Err(SubmitError::ShuttingDown) => {}
            other => panic!("blocked submitter should see ShuttingDown, got {other:?}"),
        }
        // Admitted work still drains to completion.
        assert_eq!(a.join().state, JobState::Completed);
        assert_eq!(b.join().state, JobState::Completed);
        e.shutdown(); // joins workers; must not hang
    }

    /// The submit-vs-close hammer (engine level): submitters blocking
    /// on a small queue while `close()` lands mid-storm. Every submit
    /// either completes — its handle joins to a terminal state — or
    /// returns `ShuttingDown` with nothing half-admitted; shutdown then
    /// joins without hanging and leaks no in-flight signatures.
    #[test]
    fn submit_racing_close_completes_or_errors_never_hangs() {
        for round in 0..10u64 {
            let e = engine(1, 3);
            let handles = std::thread::scope(|scope| {
                let threads: Vec<_> = (0..6u64)
                    .map(|t| {
                        let e = &e;
                        scope.spawn(move || {
                            e.submit(
                                JobSpec::new(
                                    format!("hammer-{t}"),
                                    SumGame::random(3, 3, round * 100 + t),
                                    Algorithm::Sample,
                                    round * 100 + t,
                                )
                                .with_replicas(2),
                            )
                        })
                    })
                    .collect();
                if round % 2 == 0 {
                    std::thread::yield_now();
                }
                e.close();
                threads
                    .into_iter()
                    .map(|t| t.join().expect("submitter must not panic"))
                    .collect::<Vec<_>>()
            });
            let mut accepted = 0u64;
            for h in handles {
                match h {
                    Ok(handle) => {
                        accepted += 1;
                        assert!(
                            handle.join().state.is_terminal(),
                            "accepted job must reach a terminal state"
                        );
                    }
                    Err(SubmitError::ShuttingDown) => {}
                    Err(other) => panic!("round {round}: unexpected {other:?}"),
                }
            }
            let stats = e.stats();
            assert_eq!(stats.submitted_jobs, accepted, "round {round}");
            assert_eq!(stats.in_flight_replicas, 0, "round {round}: leaked plans");
            e.shutdown(); // must not hang on a mis-counted `outstanding`
        }
    }

    #[test]
    fn blocking_submit_of_an_oversized_job_is_queue_full_not_a_hang() {
        let e = engine(1, 2);
        // Three replicas can never fit a two-slot queue at once: waiting
        // would deadlock, so blocking submit must refuse immediately.
        let spec = JobSpec::new("wide", SumGame::random(4, 3, 1), Algorithm::nested(1), 9)
            .with_replicas(3);
        match e.submit(spec) {
            Err(SubmitError::QueueFull {
                capacity: 2,
                requested: 3,
            }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let stats = e.stats();
        assert_eq!(stats.in_flight_replicas, 0, "signatures released");
        assert_eq!(stats.rejected_submissions, 1);
        e.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_and_rolls_back_cleanly() {
        let e = engine(1, 4);
        // Simulate the closed-queue state shutdown creates, while the
        // engine value is still alive to submit through.
        e.shared.injector.close();

        let spec = JobSpec::new("late", SumGame::random(4, 3, 1), Algorithm::nested(1), 9)
            .with_replicas(2);
        match e.submit(spec.clone()) {
            Err(SubmitError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        match e.try_submit(spec) {
            Err((SubmitError::ShuttingDown, returned)) => {
                assert_eq!(returned.name, "late", "spec is handed back");
            }
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        // Both failures must roll their bookkeeping back completely:
        // leaked in-flight signatures would diversify future duplicates,
        // and a wrong `outstanding` count would hang the join below.
        let stats = e.stats();
        assert_eq!(
            stats.in_flight_replicas, 0,
            "signatures released on rejection"
        );
        assert_eq!(stats.submitted_jobs, 0);
        e.shutdown(); // must not hang on a mis-counted `outstanding`
    }
}
