//! Job descriptions and result types for the engine.
//!
//! Since the unified search API landed, an engine job is "a
//! [`SearchSpec`] applied to an erased game": [`Algorithm`] is the
//! core's [`nmcs_core::AlgorithmSpec`] re-exported (the engine's old
//! private enum duplicated its config plumbing), jobs carry a
//! [`Budget`], and every replica runs through `SearchSpec::run` — so an
//! engine job is reproducible as one `spec.run(&game)` call with the
//! replica's recorded seed.

use nmcs_core::{Budget, CodedGame, DynGame, Game, MemoryPolicy, Score, SearchResult, SearchSpec};
use std::time::Duration;

/// Engine-assigned job identifier (unique per [`crate::Engine`]).
pub type JobId = u64;

/// Which search to run — the unified algorithm description from
/// `nmcs-core`. Every variant maps to exactly one strategy of
/// [`SearchSpec`], so an engine job is reproducible as a direct
/// `spec.run(&game)` call with the job's seed.
///
/// Parallel variants compose with the engine transparently: a
/// leaf-/root-/tree-parallel replica fans its inner work out on the
/// process-wide `nmcs_core::ExecutorPool` (shared with every other
/// replica — no per-job thread spawns; tree-parallel batched-leaf
/// slabs nest on the same pool), while the engine's own pool below
/// schedules whole replicas. One caveat is inherited from the core:
/// `Algorithm::TreeParallel` above one worker is the only variant
/// whose replica results are not reproducible bit-for-bit from
/// `ReplicaResult::seed_used` (see
/// `AlgorithmSpec::worker_count_deterministic`; the lock-strategy /
/// stats-mode / leaf-batch knobs are part of the job's `tag()`
/// identity, so two jobs differing only in a knob are not duplicates);
/// its replay invariant — sequence replays to score — still holds and
/// is what the engine's merge relies on.
pub type Algorithm = nmcs_core::AlgorithmSpec;

/// A search job: one game position × one algorithm × one seed × one
/// budget, run as `replicas` root-parallel replicas whose best result
/// wins.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable name; also part of the scheduler's duplicate
    /// detection, so submitting the same (name, algorithm, seed) twice
    /// concurrently diversifies the second copy instead of repeating
    /// identical work.
    pub name: String,
    /// Initial position (type-erased; see [`nmcs_core::erased`]).
    pub game: DynGame,
    pub algorithm: Algorithm,
    /// Root seed. With `replicas == 1` the job's search is bit-identical
    /// to the direct library call seeded with this value; with more
    /// replicas, per-replica seeds derive from it via
    /// `parallel_nmcs::seeds::median_seed` (see
    /// [`crate::scheduler::ReplicaPlan`]).
    pub seed: u64,
    /// Per-replica budget (deadline / playout cap / node cap), honoured
    /// cooperatively inside the search loops. A budget-interrupted
    /// replica still reports its best-so-far result.
    pub budget: Budget,
    /// Number of root-parallel replicas (≥ 1).
    pub replicas: usize,
    /// When true, odd NMCS replicas run the greedy memory policy instead
    /// of the memorising one, so the ensemble explores structurally
    /// different trajectories (WU-UCT-style diversification) instead of
    /// only reseeding.
    pub diversify_policies: bool,
}

impl JobSpec {
    /// A job over a coded game (NRPA keeps true move codes).
    pub fn new<G>(name: impl Into<String>, game: G, algorithm: Algorithm, seed: u64) -> Self
    where
        G: CodedGame + Send + Sync + 'static,
        G::Move: Send + Sync,
    {
        JobSpec {
            name: name.into(),
            game: DynGame::new(game),
            algorithm,
            seed,
            budget: Budget::none(),
            replicas: 1,
            diversify_policies: false,
        }
    }

    /// A job over a plain game (NRPA falls back to positional codes).
    pub fn uncoded<G>(name: impl Into<String>, game: G, algorithm: Algorithm, seed: u64) -> Self
    where
        G: Game + Send + Sync + 'static,
        G::Move: Send + Sync,
    {
        JobSpec {
            name: name.into(),
            game: DynGame::new_uncoded(game),
            algorithm,
            seed,
            budget: Budget::none(),
            replicas: 1,
            diversify_policies: false,
        }
    }

    /// A job from a complete [`SearchSpec`] — algorithm, budget, and
    /// seed travel together, so a spec pasted from a sweep row or a
    /// service request runs unchanged.
    pub fn from_spec<G>(name: impl Into<String>, game: G, spec: SearchSpec) -> Self
    where
        G: CodedGame + Send + Sync + 'static,
        G::Move: Send + Sync,
    {
        JobSpec {
            name: name.into(),
            game: DynGame::new(game),
            algorithm: spec.algorithm,
            seed: spec.seed,
            budget: spec.budget,
            replicas: 1,
            diversify_policies: false,
        }
    }

    /// The job's unified spec (algorithm + budget + job seed). Replica
    /// `r` of an ensemble runs this spec with its plan seed substituted.
    pub fn search_spec(&self) -> SearchSpec {
        SearchSpec {
            algorithm: self.algorithm.clone(),
            budget: self.budget.clone(),
            seed: self.seed,
        }
    }

    /// Sets the per-replica budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the ensemble width.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        assert!(replicas >= 1, "a job needs at least one replica");
        self.replicas = replicas;
        self
    }

    /// Enables per-replica policy diversification.
    pub fn with_policy_diversification(mut self) -> Self {
        self.diversify_policies = true;
        self
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; no replica has started.
    Queued,
    /// At least one replica is running.
    Running,
    /// All replicas finished and the merge is final.
    Completed,
    /// Cancelled; any replicas that had already finished are preserved.
    Cancelled,
    /// A replica panicked (e.g. a buggy game implementation); finished
    /// replicas are preserved.
    Failed,
}

impl JobState {
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// A point-in-time snapshot of a job, returned by
/// [`crate::JobHandle::poll_progress`]. Snapshots stream monotonically:
/// `replicas_done` and `work_units` never decrease, `best_score` never
/// worsens, and `state` only advances.
#[derive(Debug, Clone)]
pub struct Progress {
    pub job: JobId,
    pub state: JobState,
    pub replicas_total: usize,
    pub replicas_done: usize,
    /// Best score over the replicas finished so far.
    pub best_score: Option<Score>,
    /// Replica index that produced `best_score`.
    pub best_replica: Option<usize>,
    /// Work units accumulated across finished replicas.
    pub work_units: u64,
    /// Time from submission until the first replica was picked up (or
    /// until this poll, while still queued). Fed by the same clock
    /// reads as the engine's queue-wait histogram.
    pub queued_for: Duration,
    /// Time since the first replica was picked up (zero while queued;
    /// frozen at the terminal transition once the job finishes).
    pub running_for: Duration,
}

/// Outcome of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaResult {
    pub replica: usize,
    /// The seed this replica actually ran with. Normally the scheduler's
    /// canonical derivation from the job seed; differs only when
    /// duplicate in-flight work forced diversification. Either way, the
    /// replica's `result` is bit-identical to `spec.run` with this seed
    /// (and `memory_policy`, for NMCS).
    pub seed_used: u64,
    /// The NMCS memory policy this replica ran with (None for non-NMCS
    /// algorithms).
    pub memory_policy: Option<MemoryPolicy>,
    /// Index-encoded search result; decode with
    /// [`nmcs_core::decode_result`] against the typed root position.
    pub result: SearchResult<usize>,
    /// Why the replica stopped early, if its budget interrupted it
    /// (budget-interrupted replicas keep their best-so-far result;
    /// cancellation discards the replica instead).
    pub interrupted: Option<nmcs_core::Interruption>,
    pub elapsed: Duration,
}

/// Final outcome of a job, returned by [`crate::JobHandle::join`].
#[derive(Debug, Clone)]
pub struct JobOutput {
    pub job: JobId,
    pub name: String,
    /// `Completed`, `Cancelled`, or `Failed`.
    pub state: JobState,
    /// Best replica result (the ensemble merge). `None` only if the job
    /// was cancelled before any replica finished.
    pub best: Option<ReplicaResult>,
    /// All replica results, indexed by replica; `None` entries were
    /// cancelled before finishing.
    pub replicas: Vec<Option<ReplicaResult>>,
    /// Wall-clock time from submission to the terminal state.
    pub elapsed: Duration,
}

impl JobOutput {
    /// Best score across finished replicas.
    pub fn score(&self) -> Option<Score> {
        self.best.as_ref().map(|r| r.result.score)
    }
}
