//! Job descriptions and result types for the engine.

use nmcs_core::{
    CodedGame, DynGame, Game, MemoryPolicy, NestedConfig, NrpaConfig, Score, SearchResult,
    UctConfig,
};
use std::time::Duration;

/// Engine-assigned job identifier (unique per [`crate::Engine`]).
pub type JobId = u64;

/// Which search to run. Every variant maps to exactly one function of
/// `nmcs-core`, so an engine job is reproducible as a direct library
/// call with the job's seed.
#[derive(Debug, Clone)]
pub enum Algorithm {
    /// [`nmcs_core::nested`] at `level`.
    Nested { level: u32, config: NestedConfig },
    /// [`nmcs_core::nrpa`] at `level`.
    Nrpa { level: u32, config: NrpaConfig },
    /// [`nmcs_core::uct`].
    Uct { config: UctConfig },
    /// [`nmcs_core::baselines::flat_monte_carlo`] with `playouts`
    /// samples per step.
    FlatMc { playouts: usize },
    /// A single random playout ([`nmcs_core::sample`]).
    Sample,
}

impl Algorithm {
    /// Convenience constructor for the most common job shape.
    pub fn nested(level: u32) -> Self {
        Algorithm::Nested {
            level,
            config: NestedConfig::paper(),
        }
    }

    /// NRPA with `iterations` recursive calls per level.
    pub fn nrpa(level: u32, iterations: usize) -> Self {
        Algorithm::Nrpa {
            level,
            config: NrpaConfig {
                iterations,
                alpha: 1.0,
            },
        }
    }

    /// Short label for logs and progress lines.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Nested { .. } => "nested",
            Algorithm::Nrpa { .. } => "nrpa",
            Algorithm::Uct { .. } => "uct",
            Algorithm::FlatMc { .. } => "flat-mc",
            Algorithm::Sample => "sample",
        }
    }

    /// Stable digest of the variant *and* its configuration, mixed into
    /// replica signatures by the scheduler. Two algorithms with the same
    /// shape but different tunables must not look like duplicates.
    pub(crate) fn tag(&self) -> u64 {
        let words: [u64; 4] = match self {
            Algorithm::Nested { level, config } => [
                0x100 + *level as u64,
                config.memory as u64,
                config.playout_cap.map_or(u64::MAX, |c| c as u64),
                0,
            ],
            Algorithm::Nrpa { level, config } => [
                0x200 + *level as u64,
                config.iterations as u64,
                config.alpha.to_bits(),
                0,
            ],
            Algorithm::Uct { config } => [
                0x300,
                config.iterations as u64,
                config.exploration.to_bits(),
                config.max_bias.to_bits(),
            ],
            Algorithm::FlatMc { playouts } => [0x400, *playouts as u64, 0, 0],
            Algorithm::Sample => [0x500, 0, 0, 0],
        };
        let mut h = nmcs_core::Fnv1a::new();
        for w in words {
            h.write_u64(w);
        }
        h.finish()
    }
}

/// A search job: one game position × one algorithm × one seed, run as
/// `replicas` root-parallel replicas whose best result wins.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable name; also part of the scheduler's duplicate
    /// detection, so submitting the same (name, algorithm, seed) twice
    /// concurrently diversifies the second copy instead of repeating
    /// identical work.
    pub name: String,
    /// Initial position (type-erased; see [`nmcs_core::erased`]).
    pub game: DynGame,
    pub algorithm: Algorithm,
    /// Root seed. With `replicas == 1` the job's search is bit-identical
    /// to the direct library call seeded with this value; with more
    /// replicas, per-replica seeds derive from it via
    /// `parallel_nmcs::seeds::median_seed` (see
    /// [`crate::scheduler::ReplicaPlan`]).
    pub seed: u64,
    /// Number of root-parallel replicas (≥ 1).
    pub replicas: usize,
    /// When true, odd NMCS replicas run the greedy memory policy instead
    /// of the memorising one, so the ensemble explores structurally
    /// different trajectories (WU-UCT-style diversification) instead of
    /// only reseeding.
    pub diversify_policies: bool,
}

impl JobSpec {
    /// A job over a coded game (NRPA keeps true move codes).
    pub fn new<G>(name: impl Into<String>, game: G, algorithm: Algorithm, seed: u64) -> Self
    where
        G: CodedGame + Send + Sync + 'static,
        G::Move: Send + Sync,
    {
        JobSpec {
            name: name.into(),
            game: DynGame::new(game),
            algorithm,
            seed,
            replicas: 1,
            diversify_policies: false,
        }
    }

    /// A job over a plain game (NRPA falls back to positional codes).
    pub fn uncoded<G>(name: impl Into<String>, game: G, algorithm: Algorithm, seed: u64) -> Self
    where
        G: Game + Send + Sync + 'static,
        G::Move: Send + Sync,
    {
        JobSpec {
            name: name.into(),
            game: DynGame::new_uncoded(game),
            algorithm,
            seed,
            replicas: 1,
            diversify_policies: false,
        }
    }

    /// Sets the ensemble width.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        assert!(replicas >= 1, "a job needs at least one replica");
        self.replicas = replicas;
        self
    }

    /// Enables per-replica policy diversification.
    pub fn with_policy_diversification(mut self) -> Self {
        self.diversify_policies = true;
        self
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; no replica has started.
    Queued,
    /// At least one replica is running.
    Running,
    /// All replicas finished and the merge is final.
    Completed,
    /// Cancelled; any replicas that had already finished are preserved.
    Cancelled,
    /// A replica panicked (e.g. a buggy game implementation); finished
    /// replicas are preserved.
    Failed,
}

impl JobState {
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// A point-in-time snapshot of a job, returned by
/// [`crate::JobHandle::poll_progress`]. Snapshots stream monotonically:
/// `replicas_done` and `work_units` never decrease, `best_score` never
/// worsens, and `state` only advances.
#[derive(Debug, Clone)]
pub struct Progress {
    pub job: JobId,
    pub state: JobState,
    pub replicas_total: usize,
    pub replicas_done: usize,
    /// Best score over the replicas finished so far.
    pub best_score: Option<Score>,
    /// Replica index that produced `best_score`.
    pub best_replica: Option<usize>,
    /// Work units accumulated across finished replicas.
    pub work_units: u64,
}

/// Outcome of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaResult {
    pub replica: usize,
    /// The seed this replica actually ran with. Normally the scheduler's
    /// canonical derivation from the job seed; differs only when
    /// duplicate in-flight work forced diversification. Either way, the
    /// replica's `result` is bit-identical to the direct library call
    /// with this seed (and `memory_policy`, for NMCS).
    pub seed_used: u64,
    /// The NMCS memory policy this replica ran with (None for non-NMCS
    /// algorithms).
    pub memory_policy: Option<MemoryPolicy>,
    /// Index-encoded search result; decode with
    /// [`nmcs_core::decode_result`] against the typed root position.
    pub result: SearchResult<usize>,
    pub elapsed: Duration,
}

/// Final outcome of a job, returned by [`crate::JobHandle::join`].
#[derive(Debug, Clone)]
pub struct JobOutput {
    pub job: JobId,
    pub name: String,
    /// `Completed`, `Cancelled`, or `Failed`.
    pub state: JobState,
    /// Best replica result (the ensemble merge). `None` only if the job
    /// was cancelled before any replica finished.
    pub best: Option<ReplicaResult>,
    /// All replica results, indexed by replica; `None` entries were
    /// cancelled before finishing.
    pub replicas: Vec<Option<ReplicaResult>>,
    /// Wall-clock time from submission to the terminal state.
    pub elapsed: Duration,
}

impl JobOutput {
    /// Best score across finished replicas.
    pub fn score(&self) -> Option<Score> {
        self.best.as_ref().map(|r| r.result.score)
    }
}
