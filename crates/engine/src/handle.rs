//! Job state shared between submitters and workers, and the public
//! [`JobHandle`].

use crate::job::{JobId, JobOutput, JobSpec, JobState, Progress, ReplicaResult};
use crate::pool::Metrics;

/// What a worker reports for one replica.
pub(crate) enum ReplicaOutcome {
    Finished(ReplicaResult),
    /// Cancelled before or during the search; no result.
    Skipped,
    /// The search panicked (buggy game implementation).
    Panicked,
}
use crate::scheduler::ReplicaPlan;
use crate::session::SessionEntry;
use nmcs_core::metrics::monotonic_now;
use nmcs_core::CancelToken;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::sync::Arc;
use std::time::Instant;

pub(crate) struct JobInner {
    pub state: JobState,
    pub replicas_done: usize,
    pub results: Vec<Option<ReplicaResult>>,
    pub work_units: u64,
    /// First replica pickup; the queue-wait / run-time boundary.
    pub started_at: Option<Instant>,
    pub finished_at: Option<Instant>,
    /// Set when a replica panicked; the job finishes as `Failed`.
    pub failed: bool,
}

/// Everything the engine and workers share about one job.
pub(crate) struct JobCore {
    pub id: JobId,
    pub spec: JobSpec,
    pub plans: Vec<ReplicaPlan>,
    /// `Some` for session-scoped jobs: the worker advances this session
    /// one step instead of running the spec's one-shot search.
    pub session: Option<Arc<SessionEntry>>,
    /// Cooperative cancellation handle, polled inside the search loops
    /// of every replica (see [`nmcs_core::CancelToken`]).
    pub cancel: CancelToken,
    pub submitted_at: Instant,
    pub inner: Mutex<JobInner>,
    pub done: Condvar,
}

impl JobCore {
    pub fn new(
        id: JobId,
        spec: JobSpec,
        plans: Vec<ReplicaPlan>,
        session: Option<Arc<SessionEntry>>,
    ) -> Arc<Self> {
        let replicas = spec.replicas;
        Arc::new(JobCore {
            id,
            spec,
            plans,
            session,
            cancel: CancelToken::new(),
            submitted_at: monotonic_now(),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                replicas_done: 0,
                results: (0..replicas).map(|_| None).collect(),
                work_units: 0,
                started_at: None,
                finished_at: None,
                failed: false,
            }),
            done: Condvar::new(),
        })
    }

    pub fn lock(&self) -> MutexGuard<'_, JobInner> {
        self.inner.lock()
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// The job's cancel token (workers hand it to `SearchSpec::search`).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Marks the job running (first replica picked up) and stamps the
    /// queue-wait / run-time boundary. Returns `true` only for the
    /// replica that performed the transition, so the caller records the
    /// job's queue wait exactly once.
    pub fn mark_running(&self) -> bool {
        let mut inner = self.lock();
        if inner.state == JobState::Queued {
            inner.state = JobState::Running;
            inner.started_at = Some(monotonic_now());
            true
        } else {
            false
        }
    }

    /// The worst-case wall-clock bound for this job in milliseconds:
    /// per-replica deadline × replicas, the fully-serialised schedule.
    /// Explicitly `None` when the budget carries no deadline **or** a
    /// sub-millisecond one — a deadline that truncates to 0 ms is no
    /// usable estimate, and comparing against it would flag every
    /// running job the moment it starts.
    pub fn deadline_estimate_ms(&self) -> Option<u64> {
        let deadline = self.spec.budget.deadline?;
        let deadline_ms = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX);
        if deadline_ms == 0 {
            return None;
        }
        Some(deadline_ms.saturating_mul(self.spec.replicas as u64))
    }

    /// Flags this job as stalled when it is still running past its
    /// worst-case deadline estimate ([`JobCore::deadline_estimate_ms`]):
    /// a healthy replica trips its own deadline budget and returns, so
    /// exceeding the bound means a search loop has stopped observing
    /// its budget. Jobs with no usable estimate are never flagged.
    pub fn stalled(&self) -> Option<nmcs_core::metrics::StalledJob> {
        let estimate_ms = self.deadline_estimate_ms()?;
        let started = {
            let inner = self.lock();
            if inner.state != JobState::Running {
                return None;
            }
            inner.started_at?
        };
        let running_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        (running_ms > estimate_ms).then(|| nmcs_core::metrics::StalledJob {
            job: self.id,
            name: self.spec.name.clone(),
            running_ms,
            deadline_ms: estimate_ms,
        })
    }

    /// Records a finished (or skipped, `result == None`) replica; when it
    /// is the last one, seals the job, bumps the engine's job counters,
    /// and wakes joiners. The counters are updated while the job lock is
    /// held so any thread that observes the terminal state (via `join` or
    /// `poll_progress`) also observes them. Returns `true` when the job
    /// reached a terminal state.
    pub fn record_replica(
        &self,
        replica: usize,
        result: ReplicaOutcome,
        metrics: &Metrics,
    ) -> bool {
        let mut inner = self.lock();
        debug_assert!(
            inner.results[replica].is_none(),
            "replica {replica} recorded twice"
        );
        match result {
            ReplicaOutcome::Finished(r) => {
                inner.work_units += r.result.stats.work_units;
                inner.results[replica] = Some(r);
            }
            ReplicaOutcome::Skipped => {}
            ReplicaOutcome::Panicked => inner.failed = true,
        }
        inner.replicas_done += 1;
        let finished = inner.replicas_done == self.spec.replicas;
        if finished && !inner.state.is_terminal() {
            use std::sync::atomic::Ordering;
            if self.is_cancelled() {
                inner.state = JobState::Cancelled;
                metrics.cancelled_jobs.fetch_add(1, Ordering::Relaxed);
            } else if inner.failed {
                inner.state = JobState::Failed;
                metrics.failed_jobs.fetch_add(1, Ordering::Relaxed);
            } else {
                inner.state = JobState::Completed;
                metrics.completed_jobs.fetch_add(1, Ordering::Relaxed);
            }
            inner.finished_at = Some(monotonic_now());
            drop(inner);
            self.done.notify_all();
        }
        finished
    }

    /// Index and score of the best finished replica (ties: lowest
    /// replica index, matching the deterministic tie-break of the
    /// paper's root process). Carrying the score out alongside the
    /// index keeps every caller free of re-indexing `results` (and of
    /// the `unwrap` that used to imply).
    fn best_replica(inner: &JobInner) -> Option<(usize, i64)> {
        let mut best: Option<(i64, usize)> = None;
        for (i, r) in inner.results.iter().enumerate() {
            if let Some(r) = r {
                let score = r.result.score;
                if best.is_none_or(|(bs, _)| score > bs) {
                    best = Some((score, i));
                }
            }
        }
        best.map(|(s, i)| (i, s))
    }

    pub fn progress(&self) -> Progress {
        let inner = self.lock();
        let best = Self::best_replica(&inner);
        // The same clock reads the metrics registry uses: submitted_at →
        // started_at is the queue wait, started_at → finished_at (or
        // now, while running) is the run time.
        let now = monotonic_now();
        let queued_for = inner
            .started_at
            .unwrap_or(now)
            .saturating_duration_since(self.submitted_at);
        let running_for = inner
            .started_at
            .map(|s| {
                inner
                    .finished_at
                    .unwrap_or(now)
                    .saturating_duration_since(s)
            })
            .unwrap_or_default();
        Progress {
            job: self.id,
            state: inner.state,
            replicas_total: self.spec.replicas,
            replicas_done: inner.replicas_done,
            best_score: best.map(|(_, score)| score),
            best_replica: best.map(|(i, _)| i),
            work_units: inner.work_units,
            queued_for,
            running_for,
        }
    }

    pub fn output(&self, inner: &JobInner) -> JobOutput {
        let best = Self::best_replica(inner);
        JobOutput {
            job: self.id,
            name: self.spec.name.clone(),
            state: inner.state,
            best: best.and_then(|(i, _)| inner.results[i].clone()),
            replicas: inner.results.clone(),
            elapsed: inner
                .finished_at
                .unwrap_or_else(monotonic_now)
                .duration_since(self.submitted_at),
        }
    }
}

/// Handle to a submitted job: poll progress, cancel, or block for the
/// final result. Dropping the handle does not affect the job. Cloning
/// is cheap (one `Arc`); every clone observes the same job, so a server
/// can keep one handle registered while another request waits on it.
pub struct JobHandle {
    pub(crate) core: Arc<JobCore>,
}

impl Clone for JobHandle {
    fn clone(&self) -> Self {
        JobHandle {
            core: self.core.clone(),
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.core.id)
            .field("name", &self.core.spec.name)
            .finish()
    }
}

impl JobHandle {
    pub fn id(&self) -> JobId {
        self.core.id
    }

    pub fn name(&self) -> &str {
        &self.core.spec.name
    }

    /// A point-in-time snapshot; never blocks on search work.
    pub fn poll_progress(&self) -> Progress {
        self.core.progress()
    }

    /// Requests cancellation. Replicas that already finished keep their
    /// results; queued replicas are skipped when dequeued; *running*
    /// replicas observe the token inside their search loops (at
    /// playout-move granularity) and return promptly. Idempotent.
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }

    /// Blocks until the job reaches a terminal state and returns the
    /// merged outcome.
    pub fn join(self) -> JobOutput {
        let mut inner = self.core.lock();
        while !inner.state.is_terminal() {
            self.core.done.wait(&mut inner);
        }
        self.core.output(&inner)
    }

    /// Blocks until the job reaches a terminal state and returns the
    /// merged outcome **without consuming the handle** — a server can
    /// keep the handle registered for later polls while one request
    /// waits for completion.
    pub fn wait(&self) -> JobOutput {
        let mut inner = self.core.lock();
        while !inner.state.is_terminal() {
            self.core.done.wait(&mut inner);
        }
        self.core.output(&inner)
    }

    /// The merged outcome if the job already finished, `None` while it
    /// is still queued or running. Never blocks on search work.
    pub fn try_output(&self) -> Option<JobOutput> {
        let inner = self.core.lock();
        inner.state.is_terminal().then(|| self.core.output(&inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use nmcs_core::SearchSpec;
    use nmcs_games::SumGame;
    use std::time::Duration;

    fn core_with_deadline(deadline: Option<Duration>, replicas: usize) -> Arc<JobCore> {
        let mut job = JobSpec::from_spec(
            "stall-test",
            SumGame::random(3, 3, 7),
            SearchSpec::sample().seed(1).build(),
        );
        job.budget.deadline = deadline;
        job.replicas = replicas;
        JobCore::new(1, job, Vec::new(), None)
    }

    /// Marks the core running with a start time backdated `ago` into
    /// the past — an overrun without sleeping. Falls back to "now" when
    /// the platform clock cannot be backdated that far.
    fn force_running_backdated(core: &JobCore, ago: Duration) {
        let mut inner = core.lock();
        inner.state = JobState::Running;
        let now = monotonic_now();
        inner.started_at = Some(now.checked_sub(ago).unwrap_or(now));
    }

    #[test]
    fn no_deadline_means_no_estimate_and_no_stall_flag() {
        let core = core_with_deadline(None, 4);
        assert_eq!(core.deadline_estimate_ms(), None);
        force_running_backdated(&core, Duration::from_secs(3600));
        assert!(core.stalled().is_none(), "absent deadline must never flag");
    }

    #[test]
    fn zero_deadline_means_no_estimate_and_no_stall_flag() {
        // A sub-millisecond deadline truncates to 0 ms; the old
        // `running_ms > 0` comparison flagged such a job the instant it
        // started running.
        let core = core_with_deadline(Some(Duration::from_micros(200)), 4);
        assert_eq!(core.deadline_estimate_ms(), None);
        force_running_backdated(&core, Duration::from_secs(3600));
        assert!(core.stalled().is_none(), "zero-ms deadline must never flag");
    }

    #[test]
    fn real_deadline_scales_by_replicas_and_flags_overruns() {
        let core = core_with_deadline(Some(Duration::from_millis(50)), 3);
        assert_eq!(core.deadline_estimate_ms(), Some(150));

        // Queued jobs are never stalled, however old.
        assert!(core.stalled().is_none());

        // Freshly running: inside the bound.
        {
            let mut inner = core.lock();
            inner.state = JobState::Running;
            inner.started_at = Some(monotonic_now());
        }
        assert!(core.stalled().is_none(), "fresh job is not stalled");

        // Running past the serialised bound: flagged with the explicit
        // estimate.
        force_running_backdated(&core, Duration::from_secs(3600));
        if let Some(stall) = core.stalled() {
            assert_eq!(stall.deadline_ms, 150);
            assert!(stall.running_ms > 150);
            assert_eq!(stall.name, "stall-test");
        } else {
            // The backdated clock saturated at the process epoch on a
            // very young process; the invariant still holds there.
            let inner = core.lock();
            let ran = inner.started_at.unwrap().elapsed().as_millis();
            assert!(ran <= 150, "ran {ran}ms unflagged past the bound");
        }
    }
}
