//! The work-stealing worker pool and per-task execution.
//!
//! Topology: one bounded *injector* queue (the engine's submission
//! queue) plus one local deque per worker. A worker grabs a small batch
//! from the injector into its local deque, runs from the front, and —
//! when both its deque and the injector are empty — steals from the
//! *back* of a sibling's deque. Long searches therefore never convoy
//! behind each other: whatever sits unstarted behind a busy worker is
//! fair game for an idle one.
//!
//! Task execution goes through the unified search API: each replica
//! builds a [`SearchSpec`] (the job's algorithm and budget with the
//! replica's planned seed and memory policy) and runs it on the erased
//! game with the job's [`nmcs_core::CancelToken`]. Cancellation is
//! therefore cooperative *inside* the search loops — no game wrapper,
//! no truncated-invariant panics — and budget-interrupted replicas
//! return valid best-so-far results.
//!
//! Two pools, two granularities: this pool schedules whole *replicas*
//! (long tasks, bounded queue, backpressure); a replica running a
//! parallel strategy delegates its *in-search* fan-out — per-step leaf
//! batches, median games, tree-parallel workers — to the process-wide
//! `nmcs_core::ExecutorPool`, whose workers stay warm across every
//! replica and every job. Neither pool ever blocks the other: executor
//! batches are help-first (the submitting replica thread works too), so
//! an engine fully busy with replicas still makes progress on each.

use crate::handle::{JobCore, ReplicaOutcome};
use crate::job::{Algorithm, ReplicaResult};
use crate::queue::BoundedQueue;
use crate::scheduler::InFlight;
use nmcs_core::metrics::{metrics_enabled, DeadLetter, DeadLetterQueue, Histogram, TagHistograms};
use nmcs_core::{Fnv1a, Interruption, NestedConfig, Searcher};
use parking_lot::{Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// One schedulable unit: a single replica of a job.
pub(crate) struct Task {
    pub job: Arc<JobCore>,
    pub replica: usize,
}

/// Engine-wide counters (all monotonic except `queue_depth`).
#[derive(Default)]
pub(crate) struct Metrics {
    pub submitted_jobs: AtomicU64,
    pub completed_jobs: AtomicU64,
    pub cancelled_jobs: AtomicU64,
    pub failed_jobs: AtomicU64,
    pub executed_tasks: AtomicU64,
    pub skipped_tasks: AtomicU64,
    pub stolen_tasks: AtomicU64,
    pub total_work_units: AtomicU64,
    pub rejected_submissions: AtomicU64,
}

/// How many dead letters the engine retains (oldest evicted first).
const DLQ_CAPACITY: usize = 64;

/// The engine's observability registry: latency histograms, per-key
/// tables, the dead-letter record, and the live-job list the stall
/// scan walks. Histograms/tables are pure atomics; the DLQ and job
/// list take a mutex only at replica completion / job admission —
/// never on a search path.
pub(crate) struct Registry {
    /// Submission → first replica pickup, per job.
    pub queue_wait: Histogram,
    /// Wall time of each executed replica search.
    pub run_time: Histogram,
    /// Replica run time keyed by tenant (job name).
    pub tenants: TagHistograms,
    /// Replica run time keyed by game domain.
    pub domains: TagHistograms,
    /// Panicked / cancelled / budget-tripped replicas.
    pub dlq: DeadLetterQueue,
    /// Weak refs to every admitted job; pruned by the stall scan.
    pub jobs: Mutex<Vec<Weak<JobCore>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            queue_wait: Histogram::new(),
            run_time: Histogram::new(),
            tenants: TagHistograms::new(),
            domains: TagHistograms::new(),
            dlq: DeadLetterQueue::new(DLQ_CAPACITY),
            jobs: Mutex::new(Vec::new()),
        }
    }
}

impl Registry {
    /// Registers an admitted job for the stall scan, pruning dead
    /// entries opportunistically so the list stays O(live jobs).
    pub fn track(&self, job: &Arc<JobCore>) {
        let mut jobs = self.jobs.lock();
        jobs.retain(|w| w.strong_count() > 0);
        jobs.push(Arc::downgrade(job));
    }
}

/// FNV digest of a string key for the per-tenant/per-domain tables.
pub(crate) fn name_tag(name: &str) -> u64 {
    let mut h = Fnv1a::new();
    for b in name.as_bytes() {
        h.write_u64(*b as u64);
    }
    h.finish()
}

pub(crate) struct PoolShared {
    pub injector: BoundedQueue<Task>,
    pub locals: Vec<Mutex<VecDeque<Task>>>,
    pub in_flight: Arc<InFlight>,
    pub metrics: Metrics,
    pub registry: Registry,
    pub shutdown: AtomicBool,
    /// Tasks admitted but not yet finished; lets shutdown drain cleanly.
    pub outstanding: AtomicUsize,
}

impl PoolShared {
    pub fn new(workers: usize, queue_capacity: usize, in_flight: Arc<InFlight>) -> Arc<Self> {
        Arc::new(PoolShared {
            injector: BoundedQueue::new(queue_capacity),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            in_flight,
            metrics: Metrics::default(),
            registry: Registry::default(),
            shutdown: AtomicBool::new(false),
            outstanding: AtomicUsize::new(0),
        })
    }

    fn local(&self, idx: usize) -> MutexGuard<'_, VecDeque<Task>> {
        self.locals[idx].lock()
    }

    /// Work remains somewhere (injector or any local deque).
    fn has_work(&self) -> bool {
        self.injector.len() > 0
            || self
                .locals
                .iter()
                .enumerate()
                .any(|(i, _)| !self.local(i).is_empty())
    }
}

/// Spawns the worker threads. They exit when `shutdown` is set *and*
/// every queue is drained.
///
/// Degrades gracefully when the OS refuses a thread: the workers spawned
/// so far are shut down and joined, and the error surfaces to the caller
/// ([`crate::Engine::start`] maps it to [`crate::EngineError`]) instead
/// of aborting mid-construction with a panic.
pub(crate) fn spawn_workers(
    shared: &Arc<PoolShared>,
) -> std::io::Result<Vec<std::thread::JoinHandle<()>>> {
    let mut handles = Vec::with_capacity(shared.locals.len());
    for idx in 0..shared.locals.len() {
        let worker_shared = shared.clone();
        match std::thread::Builder::new()
            .name(format!("nmcs-engine-worker-{idx}"))
            .spawn(move || worker_loop(&worker_shared, idx))
        {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                shared.shutdown.store(true, Ordering::Release);
                shared.injector.close();
                for handle in handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }
    Ok(handles)
}

fn worker_loop(shared: &Arc<PoolShared>, idx: usize) {
    let workers = shared.locals.len();
    // Idle backoff: 1ms while work was seen recently (steal latency),
    // stretching to 64ms on a quiet engine so idle workers do not poll
    // the injector a thousand times a second forever. New injector
    // pushes (and banked surplus, via `poke`) wake sleepers immediately.
    let mut idle_wait = Duration::from_millis(1);
    loop {
        // 1. Own deque, oldest first.
        let task = shared.local(idx).pop_front();
        if let Some(task) = task {
            idle_wait = Duration::from_millis(1);
            run_task(shared, task);
            continue;
        }

        // 2. Injector: grab a small batch, run one, bank the rest where
        //    siblings can steal them.
        let batch_max = (shared.injector.len() / workers).clamp(1, 4);
        let mut batch = shared.injector.try_pop_batch(batch_max);
        if !batch.is_empty() {
            idle_wait = Duration::from_millis(1);
            let first = batch.remove(0);
            if !batch.is_empty() {
                shared.local(idx).extend(batch);
                // Wake idle siblings: the surplus just banked in this
                // worker's deque is stealable work they cannot see.
                shared.injector.poke();
            }
            run_task(shared, first);
            continue;
        }

        // 3. Steal from the back of a sibling's deque.
        let mut stolen = None;
        for off in 1..workers {
            let victim = (idx + off) % workers;
            if let Some(task) = shared.local(victim).pop_back() {
                stolen = Some(task);
                break;
            }
        }
        if let Some(task) = stolen {
            idle_wait = Duration::from_millis(1);
            shared.metrics.stolen_tasks.fetch_add(1, Ordering::Relaxed);
            run_task(shared, task);
            continue;
        }

        // 4. Idle: park briefly on the injector, or exit on drained
        //    shutdown.
        if shared.shutdown.load(Ordering::Acquire)
            && !shared.has_work()
            && shared.outstanding.load(Ordering::Acquire) == 0
        {
            return;
        }
        if let Some(task) = shared.injector.pop_timeout(idle_wait) {
            idle_wait = Duration::from_millis(1);
            run_task(shared, task);
        } else {
            if shared.injector.is_closed() {
                // pop_timeout returns immediately once the queue is
                // closed; sleep so workers waiting out a sibling's
                // long-running final task do not spin a core each.
                std::thread::sleep(idle_wait);
            }
            idle_wait = (idle_wait * 2).min(Duration::from_millis(64));
        }
    }
}

fn run_task(shared: &PoolShared, task: Task) {
    let job = task.job;
    let plan = job.plans[task.replica];

    if job.is_cancelled() {
        shared.metrics.skipped_tasks.fetch_add(1, Ordering::Relaxed);
        dead_letter(shared, &job, task.replica, "cancelled");
        release_session(&job);
        finish_replica(
            shared,
            &job,
            task.replica,
            ReplicaOutcome::Skipped,
            plan.signature,
        );
        return;
    }

    if job.mark_running() && metrics_enabled() {
        // First pickup: the job's whole queue wait, recorded once.
        shared
            .registry
            .queue_wait
            .record_duration(job.submitted_at.elapsed());
    }

    // The search is fenced with catch_unwind so a buggy game
    // implementation cannot take the worker thread (and with it the
    // whole engine) down. Cancellation no longer relies on unwinding:
    // the cancel token is polled cooperatively inside every search loop.
    let result = match &job.session {
        // Session-scoped job: advance the warm session one committed
        // move. The slot lock is uncontended — `step_inflight`
        // serialises submissions — and the poller caches refresh while
        // it is still held, so `SessionInfo` never waits on a search.
        Some(entry) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut slot = entry.slot.lock();
            let report = slot.step(Some(job.cancel_token()));
            entry.refresh_caches(&slot);
            report
        })),
        None => {
            // The replica's unified spec: job algorithm (with the
            // plan's memory policy substituted for diversified NMCS
            // replicas) + job budget + plan seed.
            let mut spec = job.spec.search_spec();
            spec.seed = plan.seed;
            if let (Algorithm::Nested { config, .. }, Some(policy)) =
                (&mut spec.algorithm, plan.memory_policy)
            {
                *config = NestedConfig {
                    memory: policy,
                    ..config.clone()
                };
            }
            let game = job.spec.game.clone();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                spec.search(&game, Some(job.cancel_token()))
            }))
        }
    };
    release_session(&job);

    let outcome = match result {
        // A search that raced with cancellation returned a truncated
        // best-so-far result; discard it so cancelled jobs never report
        // partial scores as if they were complete.
        _ if job.is_cancelled() => {
            shared.metrics.skipped_tasks.fetch_add(1, Ordering::Relaxed);
            dead_letter(shared, &job, task.replica, "cancelled");
            ReplicaOutcome::Skipped
        }
        Ok(report) => {
            shared
                .metrics
                .executed_tasks
                .fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .total_work_units
                .fetch_add(report.stats.work_units, Ordering::Relaxed);
            let elapsed = report.elapsed;
            let interrupted = report.interrupted;
            if metrics_enabled() {
                let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
                shared.registry.run_time.record(ns);
                let tenant = job.spec.name.as_str();
                shared.registry.tenants.record(name_tag(tenant), tenant, ns);
                let domain = job.spec.game.domain();
                shared.registry.domains.record(name_tag(domain), domain, ns);
            }
            if let Some(why) = interrupted {
                let reason = match why {
                    Interruption::Deadline => "deadline",
                    Interruption::PlayoutBudget => "playouts",
                    Interruption::NodeBudget => "nodes",
                    Interruption::Cancelled => "cancelled",
                };
                dead_letter(shared, &job, task.replica, reason);
            }
            ReplicaOutcome::Finished(ReplicaResult {
                replica: task.replica,
                // The session path steps with a per-step derived seed
                // (`session_step_seed`); the report carries whichever
                // seed the search actually drew from.
                seed_used: report.seed,
                memory_policy: plan.memory_policy,
                result: report.into_result(),
                interrupted,
                elapsed,
            })
        }
        Err(_panic) => {
            dead_letter(shared, &job, task.replica, "panicked");
            ReplicaOutcome::Panicked
        }
    };
    finish_replica(shared, &job, task.replica, outcome, plan.signature);
}

/// Clears a session job's in-flight flag and stamps its touch time, so
/// the session is immediately steppable again (and TTL-fresh) whether
/// the step ran, was skipped, or panicked.
fn release_session(job: &Arc<JobCore>) {
    if let Some(entry) = &job.session {
        entry.touch();
        entry.step_inflight.store(false, Ordering::Release);
    }
}

/// Appends a bounded dead-letter record for a replica that panicked,
/// was cancelled, or tripped a budget. Runs after the search returned,
/// so the one short lock inside the DLQ never sits on a rollout path.
fn dead_letter(shared: &PoolShared, job: &Arc<JobCore>, replica: usize, reason: &str) {
    if !metrics_enabled() {
        return;
    }
    shared.registry.dlq.push(DeadLetter {
        job: job.id,
        replica: replica as u64,
        name: job.spec.name.clone(),
        reason: reason.to_string(),
        age_ms: u64::try_from(job.submitted_at.elapsed().as_millis()).unwrap_or(u64::MAX),
    });
}

fn finish_replica(
    shared: &PoolShared,
    job: &Arc<JobCore>,
    replica: usize,
    outcome: ReplicaOutcome,
    signature: u64,
) {
    shared.in_flight.release(signature);
    job.record_replica(replica, outcome, &shared.metrics);
    shared.outstanding.fetch_sub(1, Ordering::AcqRel);
}
