//! Replica planning: seed derivation and in-flight-aware
//! diversification.
//!
//! **Seed contract.** A single-replica job runs with exactly the job
//! seed, so its result is bit-identical to the direct library call
//! seeded with `spec.seed`. An ensemble job's replica `r` runs with
//! `parallel_nmcs::seeds::median_seed(spec.seed, 0, r)` — the same
//! derivation the paper's cluster search uses for the median of root
//! move `r` at root step 0 — so ensemble replicas are reproducible as
//! direct calls too, and the engine shares one seed-derivation scheme
//! with the cluster backends.
//!
//! **In-flight awareness.** Parallel searches that share a trajectory do
//! redundant work (the observation behind WU-UCT's tracking of
//! in-flight simulations). The engine keeps a registry of the
//! *signatures* — hash of (job name, algorithm, seed) — of every replica
//! currently queued or running. When a new replica's canonical seed
//! collides with in-flight work (e.g. the same job submitted twice, or
//! an ensemble wider than the seed spacing), the planner bumps the
//! derivation's `attempt` coordinate until the signature is fresh: the
//! duplicate is *diversified* into a different random trajectory instead
//! of burning a worker on a byte-identical search. The seed a replica
//! actually received is recorded in
//! [`ReplicaResult::seed_used`](crate::ReplicaResult::seed_used), so
//! every result stays reproducible.

use crate::job::{Algorithm, JobSpec};
use nmcs_core::MemoryPolicy;
use parallel_nmcs::seeds::median_seed;
use parking_lot::Mutex;
use std::collections::HashSet;

/// How one replica will run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaPlan {
    pub replica: usize,
    /// The seed the replica runs with (see module docs).
    pub seed: u64,
    /// Signature registered in the in-flight set (released when the
    /// replica finishes).
    pub signature: u64,
    /// NMCS memory policy for this replica (None for non-NMCS
    /// algorithms or when the spec's config already decides it).
    pub memory_policy: Option<MemoryPolicy>,
}

/// Registry of in-flight replica signatures, shared engine-wide.
#[derive(Default)]
pub(crate) struct InFlight {
    set: Mutex<HashSet<u64>>,
}

impl InFlight {
    pub fn release(&self, signature: u64) {
        self.set.lock().remove(&signature);
    }

    pub fn len(&self) -> usize {
        self.set.lock().len()
    }

    /// Plans every replica of `spec`, registering their signatures.
    pub fn plan_job(&self, spec: &JobSpec) -> Vec<ReplicaPlan> {
        // The digest runs a probe rollout — compute it before taking the
        // engine-wide lock so concurrent submitters do not serialise
        // behind each other's game logic.
        let game_digest = spec.game.state_digest();
        let mut set = self.set.lock();
        let mut plans = Vec::with_capacity(spec.replicas);
        for r in 0..spec.replicas {
            let mut attempt = 0usize;
            let (seed, signature) = loop {
                let seed = canonical_seed(spec, r, attempt);
                let sig = signature(spec, game_digest, seed);
                if set.insert(sig) {
                    break (seed, sig);
                }
                attempt += 1;
            };
            plans.push(ReplicaPlan {
                replica: r,
                seed,
                signature,
                memory_policy: replica_policy(spec, r),
            });
        }
        plans
    }
}

/// The canonical (attempt-0) seed of replica `r`, and its diversified
/// successors for `attempt > 0`.
fn canonical_seed(spec: &JobSpec, replica: usize, attempt: usize) -> u64 {
    if spec.replicas == 1 && attempt == 0 {
        spec.seed
    } else {
        median_seed(spec.seed, attempt, replica)
    }
}

/// The NMCS memory policy replica `r` runs with: under policy
/// diversification, odd replicas explore greedily while even replicas
/// keep the paper's memorising policy.
fn replica_policy(spec: &JobSpec, replica: usize) -> Option<MemoryPolicy> {
    match &spec.algorithm {
        Algorithm::Nested { config, .. } => {
            if spec.diversify_policies && replica % 2 == 1 {
                Some(MemoryPolicy::Greedy)
            } else {
                Some(config.memory)
            }
        }
        _ => None,
    }
}

/// FNV-1a over the job name, the algorithm (variant *and* config), the
/// game position digest, and the seed. Designed so that, short of a
/// digest collision, only genuinely identical work — same position,
/// same algorithm and tunables, same randomness — collides and gets
/// diversified; a pathological collision costs only a perturbed seed,
/// which `ReplicaResult::seed_used` records, never a wrong result.
fn signature(spec: &JobSpec, game_digest: u64, seed: u64) -> u64 {
    let mut h = nmcs_core::Fnv1a::new();
    h.write_bytes(spec.name.as_bytes());
    h.write_u64(spec.algorithm.tag());
    h.write_u64(game_digest);
    h.write_u64(seed);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmcs_core::NestedConfig;

    #[derive(Clone, Debug)]
    struct Nil;
    impl nmcs_core::Game for Nil {
        type Move = usize;
        fn legal_moves(&self, _out: &mut Vec<usize>) {}
        fn play(&mut self, _mv: &usize) {}
        fn score(&self) -> i64 {
            0
        }
        fn moves_played(&self) -> usize {
            0
        }
    }

    fn spec(name: &str, seed: u64, replicas: usize) -> JobSpec {
        JobSpec::uncoded(name, Nil, Algorithm::nested(1), seed).with_replicas(replicas)
    }

    #[test]
    fn single_replica_gets_the_job_seed_verbatim() {
        let inflight = InFlight::default();
        let plans = inflight.plan_job(&spec("a", 42, 1));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].seed, 42);
    }

    #[test]
    fn ensemble_replicas_use_median_seed_derivation() {
        let inflight = InFlight::default();
        let plans = inflight.plan_job(&spec("a", 42, 4));
        for (r, plan) in plans.iter().enumerate() {
            assert_eq!(plan.seed, median_seed(42, 0, r), "replica {r}");
        }
        // All distinct.
        let mut seeds: Vec<u64> = plans.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn duplicate_submission_diversifies_instead_of_repeating() {
        let inflight = InFlight::default();
        let first = inflight.plan_job(&spec("same", 7, 1));
        let second = inflight.plan_job(&spec("same", 7, 1));
        assert_eq!(first[0].seed, 7);
        assert_ne!(second[0].seed, 7, "duplicate must be diversified");
        assert_eq!(second[0].seed, median_seed(7, 1, 0));
        // Releasing the first makes the canonical seed available again.
        inflight.release(first[0].signature);
        inflight.release(second[0].signature);
        let third = inflight.plan_job(&spec("same", 7, 1));
        assert_eq!(third[0].seed, 7);
    }

    #[test]
    fn different_names_or_algorithms_do_not_collide() {
        let inflight = InFlight::default();
        let a = inflight.plan_job(&spec("a", 7, 1));
        let b = inflight.plan_job(&spec("b", 7, 1));
        assert_eq!(a[0].seed, 7);
        assert_eq!(b[0].seed, 7, "same seed on a different job name is fine");

        let c = inflight.plan_job(&JobSpec::uncoded("a", Nil, Algorithm::nrpa(1, 5), 7));
        assert_eq!(c[0].seed, 7, "same name with a different algorithm is fine");
    }

    #[test]
    fn policy_diversification_alternates_on_odd_replicas() {
        let base = spec("d", 1, 4);
        let plain = InFlight::default().plan_job(&base);
        assert!(plain
            .iter()
            .all(|p| p.memory_policy == Some(MemoryPolicy::Memorise)));

        let diversified = InFlight::default().plan_job(&base.with_policy_diversification());
        let policies: Vec<_> = diversified
            .iter()
            .map(|p| p.memory_policy.unwrap())
            .collect();
        assert_eq!(
            policies,
            vec![
                MemoryPolicy::Memorise,
                MemoryPolicy::Greedy,
                MemoryPolicy::Memorise,
                MemoryPolicy::Greedy
            ]
        );
        let _ = NestedConfig::paper();
    }
}
