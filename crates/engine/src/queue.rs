//! Bounded MPMC submission queue with explicit backpressure.
//!
//! This is the engine's admission control: the queue holds *replica
//! tasks*, its capacity bounds the engine's queued memory, and a full
//! queue pushes back on submitters — [`BoundedQueue::push`] blocks,
//! [`BoundedQueue::try_push_all`] fails fast (all-or-nothing, so a
//! multi-replica job is never half-admitted).

use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (try-only; blocking pushes wait instead).
    Full,
    /// The queue was closed by shutdown.
    Closed,
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
    peak: usize,
}

pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
                peak: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock()
    }

    /// Blocking push: waits while the queue is full (backpressure).
    /// Production submissions go through [`BoundedQueue::push_all`]
    /// (atomic batches); the single-item form remains the close-race
    /// regression tests' probe.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.queue.len() < self.capacity {
                inner.queue.push_back(item);
                inner.peak = inner.peak.max(inner.queue.len());
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut inner);
        }
    }

    /// Blocking push of a whole batch: waits until the queue has room
    /// for *every* item, then admits them atomically — a multi-replica
    /// job is never half-admitted, even across a concurrent `close()`.
    ///
    /// Returns `Closed` (with the items handed back) if the queue shuts
    /// down before space appears, and `Full` immediately when the batch
    /// can *never* fit (`items.len() > capacity`) — waiting would
    /// deadlock.
    pub fn push_all(&self, items: Vec<T>) -> Result<(), (PushError, Vec<T>)> {
        if items.len() > self.capacity {
            return Err((PushError::Full, items));
        }
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err((PushError::Closed, items));
            }
            if self.capacity - inner.queue.len() >= items.len() {
                let n = items.len();
                inner.queue.extend(items);
                inner.peak = inner.peak.max(inner.queue.len());
                drop(inner);
                for _ in 0..n {
                    self.not_empty.notify_one();
                }
                return Ok(());
            }
            self.not_full.wait(&mut inner);
        }
    }

    /// Non-blocking push of a whole batch; either every item is admitted
    /// or none is.
    pub fn try_push_all(&self, items: Vec<T>) -> Result<(), (PushError, Vec<T>)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((PushError::Closed, items));
        }
        if self.capacity - inner.queue.len() < items.len() {
            return Err((PushError::Full, items));
        }
        let n = items.len();
        inner.queue.extend(items);
        inner.peak = inner.peak.max(inner.queue.len());
        drop(inner);
        for _ in 0..n {
            self.not_empty.notify_one();
        }
        Ok(())
    }

    /// Pops one item without blocking.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.lock();
        let item = inner.queue.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Pops up to `max` items without blocking (work-stealing workers
    /// take a batch so siblings can steal the surplus from them).
    pub fn try_pop_batch(&self, max: usize) -> Vec<T> {
        let mut inner = self.lock();
        let n = max.min(inner.queue.len());
        let batch: Vec<T> = inner.queue.drain(..n).collect();
        if !batch.is_empty() {
            drop(inner);
            self.not_full.notify_all();
        }
        batch
    }

    /// Waits up to `timeout` for an item. Returns `None` on timeout,
    /// when the queue is closed and drained, **or on any wakeup that
    /// delivers no item** (notably [`BoundedQueue::poke`]) — an early
    /// `None` tells the caller to go look for work that lives outside
    /// this queue, such as a sibling's banked surplus.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.lock();
        if let Some(item) = inner.queue.pop_front() {
            drop(inner);
            self.not_full.notify_one();
            return Some(item);
        }
        if inner.closed {
            return None;
        }
        self.not_empty.wait_for(&mut inner, timeout);
        let item = inner.queue.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Wakes every popper blocked in [`BoundedQueue::pop_timeout`]
    /// without delivering an item — used to announce stealable work that
    /// lives outside this queue (a worker's banked surplus).
    pub fn poke(&self) {
        self.not_empty.notify_all();
    }

    /// Closes the queue: pending items remain poppable, new pushes fail,
    /// and blocked poppers wake up.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Highest queue depth ever observed — the memory-bound witness used
    /// by the backpressure tests.
    pub fn peak(&self) -> usize {
        self.lock().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_push_all_is_all_or_nothing() {
        let q: BoundedQueue<u32> = BoundedQueue::new(3);
        q.try_push_all(vec![1, 2]).unwrap();
        let (err, returned) = q.try_push_all(vec![3, 4]).unwrap_err();
        assert_eq!(err, PushError::Full);
        assert_eq!(returned, vec![3, 4]);
        assert_eq!(q.len(), 2);
        q.try_push_all(vec![3]).unwrap();
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = q.clone();
        let t = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "push must still be blocked");
        assert_eq!(q.try_pop(), Some(1));
        t.join().unwrap().unwrap();
        assert_eq!(q.try_pop(), Some(2));
    }

    #[test]
    fn close_wakes_blocked_pushers_with_a_shutdown_error() {
        // Regression shape of the engine-drop audit: a submitter blocked
        // in `push` on a full queue must wake with `Closed` when the
        // queue shuts down — never hang forever, and never sneak its
        // item in after the close.
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = q.clone();
        let t = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "pusher must be blocked on the full queue");
        q.close();
        assert_eq!(t.join().unwrap(), Err(PushError::Closed));
        // The pending item survives the close; the refused one does not.
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_wakes_blocked_pushers_even_when_space_frees_up() {
        // A racier shape: close *then* drain. The woken pusher sees the
        // closed flag before the free slot and still errors out.
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = q.clone();
        let t = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(t.join().unwrap(), Err(PushError::Closed));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_wakes_poppers_and_rejects_pushes() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let t = thread::spawn(move || q2.pop_timeout(Duration::from_secs(10)));
        thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(t.join().unwrap(), None);
        assert_eq!(q.push(1), Err(PushError::Closed));
    }

    #[test]
    fn push_all_blocks_until_the_whole_batch_fits() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        q.try_push_all(vec![1, 2, 3]).unwrap();
        let q2 = q.clone();
        let t = thread::spawn(move || q2.push_all(vec![4, 5, 6]));
        thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "batch must wait: only 1 slot free");
        assert_eq!(q.try_pop(), Some(1));
        thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "batch must wait: only 2 slots free");
        assert_eq!(q.try_pop(), Some(2));
        t.join().unwrap().unwrap();
        assert_eq!(q.len(), 4);
        // Nothing interleaved into the middle of the batch.
        assert_eq!(q.try_pop_batch(4), vec![3, 4, 5, 6]);
    }

    #[test]
    fn push_all_refuses_batches_that_can_never_fit() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        let (err, returned) = q.push_all(vec![1, 2, 3]).unwrap_err();
        assert_eq!(err, PushError::Full);
        assert_eq!(returned, vec![1, 2, 3]);
        assert_eq!(q.len(), 0);
    }

    /// The submit-vs-close hammer: many threads blocking-push batches
    /// while another thread closes the queue mid-storm. Every pusher
    /// must return — `Ok` with the whole batch admitted, or `Closed`
    /// with the whole batch handed back — never hang, never lose or
    /// half-admit a batch.
    #[test]
    fn push_all_vs_close_hammer_never_hangs_or_tears_a_batch() {
        for round in 0..50 {
            let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(4));
            let pushers: Vec<_> = (0..8u64)
                .map(|p| {
                    let q = q.clone();
                    thread::spawn(move || {
                        let batch: Vec<u64> = (0..3).map(|i| p * 100 + i).collect();
                        q.push_all(batch.clone()).map_err(|(e, back)| {
                            assert_eq!(e, PushError::Closed);
                            assert_eq!(back, batch, "refused batch handed back intact");
                        })
                    })
                })
                .collect();
            // A popper drains slowly so some pushers are mid-wait when
            // the close lands; vary the drain to move the race window.
            let drained = {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..(round % 7) {
                        got.extend(q.try_pop_batch(2));
                        thread::yield_now();
                    }
                    got
                })
            };
            q.close();
            let mut admitted = drained.join().unwrap();
            let mut ok = 0;
            for t in pushers {
                if t.join().unwrap().is_ok() {
                    ok += 1;
                }
            }
            while let Some(v) = q.try_pop() {
                admitted.push(v);
            }
            // Conservation: exactly the accepted batches are in the
            // queue (or were drained), whole and untorn.
            assert_eq!(admitted.len(), ok * 3, "round {round}");
            admitted.sort_unstable();
            for chunk in admitted.chunks(3) {
                assert_eq!(chunk[1], chunk[0] + 1, "torn batch: {admitted:?}");
                assert_eq!(chunk[2], chunk[0] + 2, "torn batch: {admitted:?}");
            }
        }
    }

    #[test]
    fn pop_batch_takes_at_most_max() {
        let q: BoundedQueue<u32> = BoundedQueue::new(10);
        q.try_push_all((0..6).collect()).unwrap();
        assert_eq!(q.try_pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 2);
    }
}
