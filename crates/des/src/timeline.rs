//! Per-client busy timelines and ASCII Gantt rendering.
//!
//! A speedup number says *that* a schedule is slow; a Gantt chart shows
//! *why* — idle tails behind barriers, queues piling on slow clients
//! under Round-Robin, the Last-Minute free list keeping everyone warm.
//! The heterogeneous-cluster example renders these next to the Table VI
//! numbers.

use crate::Time;

/// Busy intervals of one client, in chronological order, non-overlapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    intervals: Vec<(Time, Time)>,
}

impl Timeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a service interval `[start, end)`.
    ///
    /// Panics if it overlaps or precedes the previous interval — a
    /// violation of the one-job-at-a-time station discipline.
    pub fn record(&mut self, start: Time, end: Time) {
        assert!(start <= end, "inverted interval");
        if let Some(&(_, prev_end)) = self.intervals.last() {
            assert!(start >= prev_end, "overlapping service intervals");
        }
        self.intervals.push((start, end));
    }

    pub fn intervals(&self) -> &[(Time, Time)] {
        &self.intervals
    }

    /// Total busy time.
    pub fn busy(&self) -> Time {
        self.intervals.iter().map(|(s, e)| e - s).sum()
    }

    /// Renders the timeline as a fixed-width strip: `#` busy, `.` idle.
    pub fn strip(&self, horizon: Time, width: usize) -> String {
        assert!(width > 0);
        if horizon == 0 {
            return ".".repeat(width);
        }
        let mut cells = vec![false; width];
        for &(s, e) in &self.intervals {
            // Mark every column the interval touches.
            let c0 = (s as u128 * width as u128 / horizon as u128) as usize;
            let c1 = ((e.saturating_sub(1)) as u128 * width as u128 / horizon as u128) as usize;
            for c in cells.iter_mut().take(c1.min(width - 1) + 1).skip(c0) {
                *c = true;
            }
        }
        cells.iter().map(|&b| if b { '#' } else { '.' }).collect()
    }
}

/// Renders a labelled Gantt chart for a set of client timelines.
pub fn gantt(timelines: &[Timeline], horizon: Time, width: usize) -> String {
    let mut out = String::new();
    for (i, tl) in timelines.iter().enumerate() {
        let util = if horizon == 0 {
            0.0
        } else {
            tl.busy() as f64 / horizon as f64
        };
        out.push_str(&format!(
            "client {i:>3} [{}] {:>4.0}%\n",
            tl.strip(horizon, width),
            util * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_sums_intervals() {
        let mut t = Timeline::new();
        t.record(0, 10);
        t.record(20, 25);
        assert_eq!(t.busy(), 15);
        assert_eq!(t.intervals().len(), 2);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_is_rejected() {
        let mut t = Timeline::new();
        t.record(0, 10);
        t.record(5, 15);
    }

    #[test]
    fn strip_marks_busy_columns() {
        let mut t = Timeline::new();
        t.record(0, 50);
        let s = t.strip(100, 10);
        assert_eq!(s, "#####.....");
    }

    #[test]
    fn strip_of_idle_timeline_is_dots() {
        let t = Timeline::new();
        assert_eq!(t.strip(100, 5), ".....");
        assert_eq!(t.strip(0, 5), ".....");
    }

    #[test]
    fn short_intervals_still_visible() {
        let mut t = Timeline::new();
        t.record(99, 100);
        let s = t.strip(100, 10);
        assert_eq!(s.chars().filter(|&c| c == '#').count(), 1);
        assert!(s.ends_with('#'));
    }

    #[test]
    fn gantt_renders_one_line_per_client() {
        let mut a = Timeline::new();
        a.record(0, 100);
        let b = Timeline::new();
        let chart = gantt(&[a, b], 100, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("########"));
        assert!(lines[0].contains("100%"));
        assert!(lines[1].contains("........"));
        assert!(lines[1].contains("0%"));
    }
}
