//! The event queue: time-ordered with stable FIFO tie-breaking.

use crate::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-queue of `(time, payload)` events.
///
/// Events with equal timestamps pop in insertion order (a monotone
/// sequence number breaks ties), which makes every simulation built on it
/// deterministic — crucial for the cross-backend agreement tests.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    last_popped: Time,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: 0,
        }
    }

    /// Schedules `payload` at absolute virtual time `time`.
    pub fn push(&mut self, time: Time, payload: E) {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
    }

    /// Pops the earliest event. The simulation clock is the returned time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.payload))
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(5, ());
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(5, 0);
        assert_eq!(q.pop(), Some((5, 0)));
        q.push(7, 2);
        q.push(12, 3);
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((12, 3)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_the_past_is_caught() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(5, ());
    }
}
