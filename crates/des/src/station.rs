//! A simulated client process: speed factor + implicit FIFO queue.

use crate::timeline::Timeline;
use crate::Time;

/// One client process of the simulated cluster.
///
/// Jobs are *work demands* in abstract work units (the instrumented search
/// counts them; see `nmcs_core::SearchStats::work_units`). A station
/// executes one job at a time at `speed` units per unit-time of a
/// speed-1.0 client; jobs assigned while busy queue FIFO — this models the
/// paper's client processes, which serve requests one after another, and
/// is what makes blind Round-Robin assignment waste time on a loaded or
/// slow client while others idle.
#[derive(Debug, Clone)]
pub struct ServiceStation {
    speed: f64,
    busy_until: Time,
    busy_time: Time,
    jobs_done: u64,
    total_queue_wait: Time,
    timeline: Option<Timeline>,
}

impl ServiceStation {
    /// Creates an idle station with the given relative speed (> 0).
    pub fn new(speed: f64) -> Self {
        assert!(speed > 0.0, "station speed must be positive");
        Self {
            speed,
            busy_until: 0,
            busy_time: 0,
            jobs_done: 0,
            total_queue_wait: 0,
            timeline: None,
        }
    }

    /// Like [`ServiceStation::new`], additionally recording every service
    /// interval for Gantt rendering (costs memory per job; off by
    /// default).
    pub fn new_recording(speed: f64) -> Self {
        let mut s = Self::new(speed);
        s.timeline = Some(Timeline::new());
        s
    }

    /// The recorded timeline, if recording was enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Relative speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// When the station next becomes idle.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Whether the station is idle at time `now`.
    pub fn idle_at(&self, now: Time) -> bool {
        self.busy_until <= now
    }

    /// Converts a work demand into this station's service duration.
    pub fn service_time(&self, demand_units: u64, ns_per_unit: f64) -> Time {
        ((demand_units as f64 * ns_per_unit / self.speed).round() as Time).max(1)
    }

    /// Assigns a job at time `now`; returns its completion time.
    ///
    /// If the station is busy the job starts when the current backlog
    /// drains (FIFO).
    pub fn assign(&mut self, now: Time, demand_units: u64, ns_per_unit: f64) -> Time {
        let start = self.busy_until.max(now);
        let dur = self.service_time(demand_units, ns_per_unit);
        self.total_queue_wait += start - now;
        self.busy_until = start + dur;
        self.busy_time += dur;
        self.jobs_done += 1;
        if let Some(tl) = &mut self.timeline {
            tl.record(start, self.busy_until);
        }
        self.busy_until
    }

    /// Total time spent serving jobs.
    pub fn busy_time(&self) -> Time {
        self.busy_time
    }

    /// Number of jobs served.
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done
    }

    /// Sum over jobs of the time spent waiting in this station's queue.
    pub fn total_queue_wait(&self) -> Time {
        self.total_queue_wait
    }

    /// Utilisation over the window `[0, horizon]`.
    pub fn utilisation(&self, horizon: Time) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_time as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_station_starts_jobs_immediately() {
        let mut s = ServiceStation::new(1.0);
        let done = s.assign(100, 50, 1.0);
        assert_eq!(done, 150);
        assert_eq!(s.total_queue_wait(), 0);
        assert_eq!(s.jobs_done(), 1);
    }

    #[test]
    fn busy_station_queues_fifo() {
        let mut s = ServiceStation::new(1.0);
        assert_eq!(s.assign(0, 100, 1.0), 100);
        // Arrives at t=10 but must wait until 100.
        assert_eq!(s.assign(10, 100, 1.0), 200);
        assert_eq!(s.total_queue_wait(), 90);
        assert!(!s.idle_at(150));
        assert!(s.idle_at(200));
    }

    #[test]
    fn faster_stations_finish_sooner() {
        let mut slow = ServiceStation::new(0.5);
        let mut fast = ServiceStation::new(2.0);
        assert_eq!(slow.assign(0, 100, 1.0), 200);
        assert_eq!(fast.assign(0, 100, 1.0), 50);
    }

    #[test]
    fn service_time_rounds_and_never_zero() {
        let s = ServiceStation::new(3.0);
        assert_eq!(s.service_time(1, 0.1), 1, "sub-unit demands clamp to 1");
        assert_eq!(s.service_time(300, 1.0), 100);
    }

    #[test]
    fn utilisation_reflects_busy_fraction() {
        let mut s = ServiceStation::new(1.0);
        s.assign(0, 250, 1.0);
        assert!((s.utilisation(1000) - 0.25).abs() < 1e-9);
        assert_eq!(s.utilisation(0), 0.0);
    }

    #[test]
    fn busy_time_accumulates_across_jobs() {
        let mut s = ServiceStation::new(1.0);
        s.assign(0, 10, 1.0);
        s.assign(0, 20, 1.0);
        s.assign(100, 5, 1.0);
        assert_eq!(s.busy_time(), 35);
        assert_eq!(s.jobs_done(), 3);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = ServiceStation::new(0.0);
    }

    #[test]
    fn recording_station_tracks_intervals() {
        let mut s = ServiceStation::new_recording(1.0);
        s.assign(0, 10, 1.0);
        s.assign(0, 5, 1.0); // queues behind the first
        let tl = s.timeline().expect("recording on");
        assert_eq!(tl.intervals(), &[(0, 10), (10, 15)]);
        assert!(ServiceStation::new(1.0).timeline().is_none());
    }
}
