//! # des-sim — deterministic discrete-event cluster simulation
//!
//! The paper's experiments ran on a 33-machine heterogeneous cluster
//! (20×1.86 GHz + 12×2.33 GHz dual-core PCs and a quad-core server) that we
//! do not have. What the experiments *measure*, however — parallel
//! speedups and the Round-Robin vs Last-Minute dispatcher gap — depends
//! only on job service times and on the order of job submissions and
//! completions. This crate provides the deterministic machinery to replay
//! those orderings in virtual time:
//!
//! * [`EventQueue`] — a time-ordered queue with stable FIFO tie-breaking,
//!   so simulations are bit-reproducible;
//! * [`ServiceStation`] — one simulated client process: a speed factor and
//!   an implicit FIFO queue (jobs assigned while busy wait, which is
//!   exactly the weakness of blind Round-Robin dispatch);
//! * [`ClusterSpec`] — cluster shapes, including the paper's homogeneous
//!   64-client configuration and the heterogeneous repartitions of
//!   Table VI;
//! * [`SimStats`] — makespan, utilisation and queueing statistics.
//!
//! The parallel-NMCS trace replay that drives this kernel lives in the
//! `parallel-nmcs` crate; this crate knows nothing about games.

pub mod cluster;
pub mod event;
pub mod station;
pub mod stats;
pub mod timeline;

pub use cluster::{ClientSpec, ClusterSpec};
pub use event::EventQueue;
pub use station::ServiceStation;
pub use stats::SimStats;
pub use timeline::{gantt, Timeline};

/// Virtual time in nanoseconds. Integers keep the simulation exactly
/// associative and reproducible (no float summation-order effects).
pub type Time = u64;

/// One second of virtual time.
pub const SECOND: Time = 1_000_000_000;

/// Formats a virtual duration the way the paper prints times
/// (`1h07m33s`, `33m11s`, `12s`), with sub-second precision below ten
/// seconds where the paper's format would round everything away.
pub fn format_time(t: Time) -> String {
    let total_secs = t / SECOND;
    let h = total_secs / 3600;
    let m = (total_secs % 3600) / 60;
    let s = total_secs % 60;
    if h > 0 {
        format!("{h}h{m:02}m{s:02}s")
    } else if m > 0 {
        format!("{m}m{s:02}s")
    } else if t >= 10 * SECOND {
        format!("{s:02}s")
    } else if t >= SECOND / 10 {
        format!("{:.2}s", t as f64 / SECOND as f64)
    } else if t >= 10_000 {
        format!("{:.2}ms", t as f64 / 1e6)
    } else {
        format!("{t}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_matches_paper_style() {
        assert_eq!(format_time(12 * SECOND), "12s");
        assert_eq!(format_time((33 * 60 + 11) * SECOND), "33m11s");
        assert_eq!(format_time((3600 + 7 * 60 + 33) * SECOND), "1h07m33s");
        assert_eq!(format_time(28 * 3600 * SECOND + 6 * SECOND), "28h00m06s");
    }

    #[test]
    fn format_sub_second_precision() {
        assert_eq!(format_time(9 * SECOND), "9.00s");
        assert_eq!(format_time(1_540_000_000), "1.54s");
        assert_eq!(format_time(820_000_000), "0.82s");
        assert_eq!(format_time(5_250_000), "5.25ms");
        assert_eq!(format_time(10_700_000), "10.70ms");
        assert_eq!(format_time(900), "900ns");
        assert_eq!(format_time(0), "0ns");
    }
}
