//! Simulation output statistics.

use crate::{ServiceStation, Time};
use serde::{Deserialize, Serialize};

/// Aggregate results of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Virtual time at which the last result reached its consumer.
    pub makespan: Time,
    /// Total jobs executed.
    pub jobs: u64,
    /// Total work units executed.
    pub total_work: u64,
    /// Mean client utilisation over `[0, makespan]`.
    pub mean_utilisation: f64,
    /// Minimum and maximum client utilisation.
    pub min_utilisation: f64,
    pub max_utilisation: f64,
    /// Mean time jobs spent waiting in client queues.
    pub mean_queue_wait: f64,
}

impl SimStats {
    /// Collects statistics from the stations after a run.
    pub fn collect(stations: &[ServiceStation], makespan: Time, total_work: u64) -> Self {
        assert!(!stations.is_empty());
        let jobs: u64 = stations.iter().map(|s| s.jobs_done()).sum();
        let utils: Vec<f64> = stations.iter().map(|s| s.utilisation(makespan)).collect();
        let mean_utilisation = utils.iter().sum::<f64>() / utils.len() as f64;
        let min_utilisation = utils.iter().copied().fold(f64::INFINITY, f64::min);
        let max_utilisation = utils.iter().copied().fold(0.0, f64::max);
        let total_wait: Time = stations.iter().map(|s| s.total_queue_wait()).sum();
        let mean_queue_wait = if jobs == 0 {
            0.0
        } else {
            total_wait as f64 / jobs as f64
        };
        Self {
            makespan,
            jobs,
            total_work,
            mean_utilisation,
            min_utilisation,
            max_utilisation,
            mean_queue_wait,
        }
    }

    /// Speedup relative to a given single-client reference time.
    pub fn speedup(&self, single_client: Time) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            single_client as f64 / self.makespan as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_aggregates_utilisation_and_waits() {
        let mut a = ServiceStation::new(1.0);
        let mut b = ServiceStation::new(1.0);
        a.assign(0, 100, 1.0); // busy 100
        b.assign(0, 50, 1.0); // busy 50
        b.assign(0, 50, 1.0); // queued 50, busy 50 more
        let mut c = ServiceStation::new(1.0);
        c.assign(0, 50, 1.0); // busy 50
        let stats = SimStats::collect(&[a, b, c], 200, 250);
        assert_eq!(stats.jobs, 4);
        // Utilisations over 200: a = 0.5, b = 0.5, c = 0.25.
        assert!(
            (stats.mean_utilisation - 0.41666666).abs() < 1e-6,
            "{}",
            stats.mean_utilisation
        );
        assert!((stats.min_utilisation - 0.25).abs() < 1e-9);
        assert!((stats.max_utilisation - 0.5).abs() < 1e-9);
        // One job waited 50; 4 jobs total.
        assert!((stats.mean_queue_wait - 12.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_reference_over_makespan() {
        let s = SimStats {
            makespan: 250,
            jobs: 1,
            total_work: 0,
            mean_utilisation: 0.0,
            min_utilisation: 0.0,
            max_utilisation: 0.0,
            mean_queue_wait: 0.0,
        };
        assert!((s.speedup(1000) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_jobs_has_zero_wait() {
        let stats = SimStats::collect(&[ServiceStation::new(1.0)], 100, 0);
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.mean_queue_wait, 0.0);
    }
}
