//! Cluster shapes, including the paper's configurations.
//!
//! Speeds are normalised to a 1.86 GHz core = 1.0, the unit the paper
//! itself uses when it corrects its 64-client speedup by the mean
//! frequency ratio `r = ((20×1.86 + 12×2.33)/32)/1.86 = 1.09` (§V).
//!
//! The heterogeneous repartitions of Table VI put 4 client processes on a
//! dual-core PC (each running at ~half a core) next to PCs with the normal
//! 2 clients. We model that oversubscription directly as a speed factor —
//! `cores / clients_per_pc` — which preserves the load-imbalance mechanism
//! the Last-Minute dispatcher was designed to exploit.

use crate::{Time, SECOND};
use serde::{Deserialize, Serialize};

/// Normalised speed of a 2.33 GHz core (relative to 1.86 GHz).
pub const FAST_CORE: f64 = 2.33 / 1.86;

/// Default one-way message latency: 100 µs, a typical small-message
/// latency on the paper's Gigabit Ethernet with Open MPI.
pub const DEFAULT_LATENCY: Time = 100_000;

/// One simulated client process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Relative speed (1.0 = one dedicated 1.86 GHz core).
    pub speed: f64,
}

/// A cluster configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// The client processes.
    pub clients: Vec<ClientSpec>,
    /// Virtual nanoseconds one work unit takes on a speed-1.0 client.
    /// Calibrated against measured search costs by the bench crate.
    pub ns_per_unit: f64,
    /// One-way message latency between any two processes.
    pub latency: Time,
}

impl ClusterSpec {
    /// `n` identical clients at speed 1.0.
    pub fn homogeneous(n: usize) -> Self {
        assert!(n > 0);
        Self {
            clients: vec![ClientSpec { speed: 1.0 }; n],
            ns_per_unit: 1_000.0,
            latency: DEFAULT_LATENCY,
        }
    }

    /// The paper's full 64-client configuration: two clients per dual-core
    /// PC on 20 slow (1.86 GHz) and 12 fast (2.33 GHz) machines.
    pub fn paper_64() -> Self {
        let mut clients = Vec::with_capacity(64);
        clients.extend(std::iter::repeat_n(ClientSpec { speed: 1.0 }, 40));
        clients.extend(std::iter::repeat_n(ClientSpec { speed: FAST_CORE }, 24));
        Self {
            clients,
            ns_per_unit: 1_000.0,
            latency: DEFAULT_LATENCY,
        }
    }

    /// The paper's reduced runs: `n ≤ 40` clients on 1.86 GHz PCs only
    /// ("the result for 32 clients is obtained using only 1.86 GHz PCs").
    pub fn paper_subset(n: usize) -> Self {
        assert!(
            (1..=40).contains(&n),
            "paper subsets use the 40 slow clients"
        );
        Self::homogeneous(n)
    }

    /// Table VI repartition `16x4+16x2`: 16 dual-core PCs running 4
    /// clients each (speed 2/4 = 0.5) plus 16 PCs running the normal 2
    /// clients (speed 1.0) — 96 clients total.
    pub fn hetero_16x4_16x2() -> Self {
        Self::oversubscribed(16, 16)
    }

    /// Table VI repartition `8x4+8x2` — 48 clients total.
    pub fn hetero_8x4_8x2() -> Self {
        Self::oversubscribed(8, 8)
    }

    /// `a` PCs × 4 clients at half speed + `b` PCs × 2 clients at full
    /// speed (all PCs dual-core).
    pub fn oversubscribed(a: usize, b: usize) -> Self {
        let mut clients = Vec::with_capacity(4 * a + 2 * b);
        clients.extend(std::iter::repeat_n(ClientSpec { speed: 0.5 }, 4 * a));
        clients.extend(std::iter::repeat_n(ClientSpec { speed: 1.0 }, 2 * b));
        Self {
            clients,
            ns_per_unit: 1_000.0,
            latency: DEFAULT_LATENCY,
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Aggregate compute capacity (sum of speeds), the upper bound on any
    /// speedup relative to a single speed-1.0 client.
    pub fn capacity(&self) -> f64 {
        self.clients.iter().map(|c| c.speed).sum()
    }

    /// Sets the work-unit calibration (chainable).
    pub fn with_ns_per_unit(mut self, ns: f64) -> Self {
        assert!(ns > 0.0);
        self.ns_per_unit = ns;
        self
    }

    /// Sets the one-way latency (chainable).
    pub fn with_latency(mut self, latency: Time) -> Self {
        self.latency = latency;
        self
    }
}

/// A human-readable summary, e.g. `64 clients, capacity 67.0, lat 100us`.
impl std::fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} clients, capacity {:.1}, lat {}us",
            self.len(),
            self.capacity(),
            self.latency / 1_000
        )
    }
}

/// Reference single-client time for speedup computations: the virtual
/// duration of `total_work` units on one speed-1.0 client.
pub fn single_client_time(total_work: u64, ns_per_unit: f64) -> Time {
    ((total_work as f64 * ns_per_unit).round() as Time).max(1)
}

/// Convenience: seconds → virtual time.
pub fn secs(s: f64) -> Time {
    (s * SECOND as f64).round() as Time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_64_matches_the_cluster_description() {
        let c = ClusterSpec::paper_64();
        assert_eq!(c.len(), 64);
        let slow = c.clients.iter().filter(|c| c.speed == 1.0).count();
        let fast = c.clients.iter().filter(|c| c.speed > 1.0).count();
        assert_eq!(slow, 40);
        assert_eq!(fast, 24);
        // Mean frequency ratio from §V: 1.09.
        let mean = c.capacity() / c.len() as f64;
        assert!((mean - 1.09).abs() < 0.005, "mean speed {mean}");
    }

    #[test]
    fn hetero_repartitions_have_paper_sizes() {
        let h1 = ClusterSpec::hetero_16x4_16x2();
        assert_eq!(h1.len(), 16 * 4 + 16 * 2);
        let h2 = ClusterSpec::hetero_8x4_8x2();
        assert_eq!(h2.len(), 8 * 4 + 8 * 2);
        // Oversubscription conserves total core capacity.
        assert!((h1.capacity() - 64.0).abs() < 1e-9);
        assert!((h2.capacity() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_capacity_equals_count() {
        let c = ClusterSpec::homogeneous(8);
        assert_eq!(c.len(), 8);
        assert!((c.capacity() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn builders_chain() {
        let c = ClusterSpec::homogeneous(2)
            .with_ns_per_unit(5.0)
            .with_latency(42);
        assert_eq!(c.ns_per_unit, 5.0);
        assert_eq!(c.latency, 42);
    }

    #[test]
    fn single_client_time_scales_linearly() {
        assert_eq!(single_client_time(1000, 2.0), 2000);
        assert_eq!(single_client_time(0, 2.0), 1);
    }

    #[test]
    fn serde_round_trip() {
        let c = ClusterSpec::paper_64();
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn secs_conversion() {
        assert_eq!(secs(1.5), 1_500_000_000);
    }
}
