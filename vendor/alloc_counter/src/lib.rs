//! Minimal vendored counting allocator for zero-allocation assertions.
//!
//! [`CountingAllocator`] wraps [`System`] and bumps a thread-local
//! counter on every `alloc`/`realloc` (and a separate one on `dealloc`).
//! Install it as the `#[global_allocator]` of a **test binary only** —
//! that is the cfg gate: production builds and every other test binary
//! keep the plain system allocator, so benchmark numbers are untouched.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//!
//! let result = alloc_counter::assert_no_alloc("playout", || scratch.run_undo(...));
//! ```
//!
//! Counters are per-thread so concurrent test threads do not see each
//! other's allocations. The counter bump uses a `const`-initialised
//! `thread_local!` `Cell` — no lazy allocation, so the allocator never
//! re-enters itself — with an atomic fallback for the brief TLS-teardown
//! window at thread exit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::LocalKey;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations observed while a thread's TLS was being torn down (they
/// belong to no live thread and are excluded from scoped counts).
static TEARDOWN_EVENTS: AtomicU64 = AtomicU64::new(0);

fn bump(key: &'static LocalKey<Cell<u64>>) {
    if key.try_with(|c| c.set(c.get() + 1)).is_err() {
        TEARDOWN_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

/// A [`System`]-backed allocator that counts this thread's heap events.
pub struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the counter bump touches only a
// const-initialised TLS cell and so cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move the block; it counts as an allocation event
        // because a zero-alloc region must not grow anything either.
        bump(&ALLOCS);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        bump(&DEALLOCS);
        System.dealloc(ptr, layout)
    }
}

/// Allocation events (`alloc` + `alloc_zeroed` + `realloc`) recorded on
/// the current thread so far. Monotone; meaningful only when
/// [`CountingAllocator`] is installed as the global allocator.
pub fn alloc_count() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Deallocation events recorded on the current thread so far.
pub fn dealloc_count() -> u64 {
    DEALLOCS.with(Cell::get)
}

/// Runs `f` and returns `(allocation events during f, f's result)`.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = alloc_count();
    let result = f();
    (alloc_count() - before, result)
}

/// Runs `f`, asserting it performs **zero** allocation events on this
/// thread; returns `f`'s result. `label` names the region in the panic
/// message. (The failure path itself allocates — that is fine, the
/// region is already over.)
pub fn assert_no_alloc<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let (n, result) = count_allocs(f);
    assert!(
        n == 0,
        "`{label}` performed {n} allocation event(s) in a region declared allocation-free"
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the crate's own unit tests do NOT install the allocator (a
    // vendored lib must not force it on the workspace); they only check
    // the counting plumbing, which is inert but well-defined without it.

    #[test]
    fn counters_start_at_zero_and_scoping_subtracts() {
        let (n, v) = count_allocs(|| 40 + 2);
        assert_eq!(v, 42);
        assert_eq!(n, 0, "no allocator installed, so no events recorded");
    }

    #[test]
    fn assert_no_alloc_passes_through_the_result() {
        assert_eq!(assert_no_alloc("arith", || 7 * 6), 42);
    }
}
