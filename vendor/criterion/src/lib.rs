//! Minimal vendored stand-in for `criterion`, used because the build
//! environment has no network access. It provides the same bench-author
//! surface (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`) with a simple
//! measurement loop: a short warm-up, then timed batches reporting the
//! median ns/iteration. No statistics machinery, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch-size hint for `iter_batched`; accepted, only lightly honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measure_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, self.measure_time, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            sample_size: None,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, self.criterion.measure_time, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; runs the measured routine.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Filled by `iter`/`iter_batched`: per-sample mean ns/iteration.
    results_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and calibration: find an iteration count that takes
        // roughly budget/samples per sample.
        let per_sample = self.budget.as_secs_f64() / self.samples as f64;
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = t.elapsed().as_secs_f64();
            if elapsed >= per_sample / 4.0 || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            self.results_ns.push(ns);
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            let ns = t.elapsed().as_nanos() as f64;
            self.results_ns.push(ns);
        }
    }
}

fn run_bench<F>(name: &str, samples: usize, budget: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: samples.max(2),
        budget,
        results_ns: Vec::new(),
    };
    f(&mut b);
    if b.results_ns.is_empty() {
        println!("{name:50}  (no measurement)");
        return;
    }
    b.results_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = b.results_ns[b.results_ns.len() / 2];
    let lo = b.results_ns[0];
    let hi = b.results_ns[b.results_ns.len() - 1];
    println!(
        "{name:50}  median {:>12}   [{} .. {}]",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
