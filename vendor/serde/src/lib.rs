//! Minimal vendored stand-in for `serde`, used because the build
//! environment has no network access.
//!
//! Real serde decouples data structures from formats through a visitor
//! API; this shim collapses that to a single JSON-shaped [`Value`] tree,
//! which is all the workspace needs (its only format is JSON via the
//! vendored `serde_json`). The public surface the workspace relies on —
//! `serde::{Serialize, Deserialize}` derives, `#[serde(default)]`, and
//! generic `to_string`/`from_str` in `serde_json` — behaves identically.

// The derive macros live in the macro namespace, the traits below in the
// type namespace, so — exactly as with real serde — a single
// `use serde::{Serialize, Deserialize}` imports both.
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value: the single interchange representation of the
/// vendored serde/serde_json pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (preserves struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }

    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// A `Value` serialises as itself, so hand-built JSON trees (e.g. a
// server's response bodies) pass straight through `serde_json` —
// mirroring real serde_json's `Value: Serialize + Deserialize`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::custom(format!("{n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let xs: Vec<T> = Vec::from_value(v)?;
        let n = xs.len();
        xs.try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(xs) => {
                        let mut it = xs.iter();
                        Ok(($(
                            $t::from_value(it.next().ok_or_else(|| {
                                Error::custom("tuple too short")
                            })?)?,
                        )+))
                    }
                    other => Err(Error::custom(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}
