//! Minimal vendored stand-in for `parking_lot`: std locks with
//! parking_lot's panic-free, poison-free API (`lock()` returns the guard
//! directly; a poisoned std lock is recovered transparently), a
//! [`Condvar`] that waits on a `&mut MutexGuard`, and — in debug builds
//! only — a lock-order deadlock detector (see [`lock_order`]).
//!
//! The detector is env-gated: run with `NMCS_LOCK_ORDER=1` and every
//! `lock()`/`read()`/`write()` through this crate feeds a global
//! lock-order graph; an A→B / B→A inversion panics with both recorded
//! acquisition backtraces *before* blocking, instead of deadlocking the
//! run. Release builds compile all of it out (no per-lock id slot, no
//! branches on the hot path).

use std::fmt;
use std::sync;
use std::time::Duration;

#[cfg(debug_assertions)]
pub mod lock_order;

/// Release stand-in for the debug-only detector: tracking is compiled
/// out and can never be enabled.
#[cfg(not(debug_assertions))]
pub mod lock_order {
    /// Always `false` in release builds — the detector does not exist.
    pub const fn lock_order_enabled() -> bool {
        false
    }

    /// No-op in release builds.
    pub fn set_lock_order_enabled(_on: bool) {}
}

pub use lock_order::{lock_order_enabled, set_lock_order_enabled};

#[cfg(debug_assertions)]
use std::sync::atomic::AtomicU64;

/// A mutex that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    order_id: AtomicU64,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            order_id: AtomicU64::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = lock_order::acquire(&self.order_id, lock_order::LockKind::Mutex);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            _held: lock_order::acquire_try(&self.order_id),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`]. The inner std guard lives in
/// an `Option` so [`Condvar::wait`] can hand it to the OS wait and put
/// it back; outside that window it is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    _held: lock_order::Held,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// An rwlock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    order_id: AtomicU64,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            order_id: AtomicU64::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = lock_order::acquire(&self.order_id, lock_order::LockKind::RwLock);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = lock_order::acquire(&self.order_id, lock_order::LockKind::RwLock);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            #[cfg(debug_assertions)]
            _held: held,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: lock_order::Held,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: lock_order::Held,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed
/// rather than a notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with this crate's [`Mutex`]. The wait
/// keeps the lock on the detector's held stack: releasing and
/// reacquiring the *same* lock under the *same* held set can never add
/// a lock-order edge.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified. Spurious wakeups are possible, as with
    /// `std`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*p2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g);
        assert!(
            m.try_lock().is_some(),
            "wait_for must reacquire then release"
        );
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_builds_compile_the_detector_out() {
        assert!(!lock_order_enabled());
        set_lock_order_enabled(true); // No-op by construction.
        assert!(!lock_order_enabled());
    }

    /// End-to-end detector contract, serialised in one test body because
    /// the enable flag and the lock-order graph are process-global.
    #[test]
    #[cfg(debug_assertions)]
    fn lock_order_detector_end_to_end() {
        // Off by default (only assertable when the env override is not
        // set — CI's NMCS_LOCK_ORDER=1 pass legitimately flips this).
        if std::env::var("NMCS_LOCK_ORDER").is_err() {
            assert!(
                !lock_order_enabled(),
                "detector must be opt-in, not on by default"
            );
        }

        set_lock_order_enabled(true);
        // The panics under test fire in spawned threads; silence the
        // default hook so expected failures don't spray backtraces into
        // the test output.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        // Consistent nesting (A then B from several threads) is fine.
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        for _ in 0..2 {
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                drop((ga, gb));
            })
            .join()
            .expect("consistent lock order must not trip the detector");
        }

        // Seeded inversion regression: B then A after A then B was
        // recorded must abort with the cycle report, even though the
        // threads are join-serialised and never actually deadlock.
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let err = thread::spawn(move || {
            let gb = b2.lock();
            let ga = a2.lock();
            drop((gb, ga));
        })
        .join()
        .expect_err("B->A after A->B must panic with the inversion report");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lock-order inversion"),
            "report should name the inversion, got: {msg}"
        );
        assert!(
            msg.contains("acquisition backtrace"),
            "report should carry the recorded acquisition stacks, got: {msg}"
        );

        // Re-locking a mutex the same thread already holds is reported
        // as a guaranteed deadlock rather than hanging the test.
        let err = thread::spawn(|| {
            let m = Mutex::new(());
            let g = m.lock();
            let g2 = m.lock();
            drop((g, g2));
        })
        .join()
        .expect_err("self-relock must be reported, not deadlock");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("re-acquiring mutex"), "got: {msg}");

        // try_lock on a contended lock is a clean miss, not a finding.
        let g = a.lock();
        assert!(a.try_lock().is_none());
        drop(g);

        std::panic::set_hook(prev_hook);
        // Restore the env-derived default for any test scheduled later.
        set_lock_order_enabled(
            std::env::var("NMCS_LOCK_ORDER")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false),
        );
    }
}
