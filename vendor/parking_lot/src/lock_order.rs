//! Runtime lock-order deadlock detector (lockdep-style).
//!
//! Every tracked acquisition appends a directed edge *currently held →
//! being acquired* to a process-global lock-order graph. Before a
//! blocking acquisition, the detector checks whether the new edge would
//! close a cycle — the classic A→B / B→A inversion — and panics with
//! **both** recorded acquisition backtraces instead of letting the run
//! deadlock. This catches *potential* deadlocks even when the racing
//! schedule happens not to interleave badly: two threads that ever take
//! the same two locks in opposite orders are reported, whether or not
//! they collided this run.
//!
//! Gating (the contract `vendor/parking_lot` tests assert):
//!
//! * **Release builds compile the detector out entirely** — the lock
//!   types carry no id slot, acquisitions do no tracking, and
//!   [`lock_order_enabled`] is a constant `false`.
//! * **Debug builds keep it off by default.** It turns on only when the
//!   `NMCS_LOCK_ORDER` environment variable is `1`/`true` at first use,
//!   or programmatically via [`set_lock_order_enabled`] (the hook the
//!   regression tests use).
//!
//! Design notes:
//!
//! * Lock ids are assigned lazily from a monotone counter on first
//!   tracked acquisition and never reused, so edges recorded against a
//!   dropped lock can never alias a new one — any reported cycle is a
//!   genuine historical ordering inversion.
//! * Only the edge *top-of-held-stack → new* is recorded. Deeper held
//!   locks are reachable transitively (their edge to the current top
//!   was recorded when the top was acquired), so cycle detection loses
//!   nothing while the graph stays linear in the number of distinct
//!   nesting pairs.
//! * `try_lock` acquisitions are pushed on the held stack (they order
//!   *later* acquisitions) but record no edge and run no cycle check
//!   themselves: a try-lock cannot block, and flagging the inversion it
//!   deliberately avoids would punish the correct mitigation.
//! * Re-acquiring a mutex already held by the same thread is reported
//!   immediately (with `std` mutexes that is a guaranteed deadlock).
//!   RwLock self-acquisition is *not* flagged: shared re-reads are
//!   legal, and the detector cannot see hold kinds after the fact.
//! * A `Condvar` wait keeps the lock on the held stack: the wait
//!   releases and reacquires the *same* lock under the *same* held set,
//!   so no edge it could contribute is ever new.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Off / on / not-yet-read-from-env. The detector's own state uses raw
/// std primitives throughout so tracked locks never re-enter it.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Monotone id source; 0 is reserved for "untracked".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Whether lock-order tracking is active. First call reads
/// `NMCS_LOCK_ORDER` from the environment (`1` or `true` enables);
/// afterwards the answer is a single relaxed load.
pub fn lock_order_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var("NMCS_LOCK_ORDER")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatically enables or disables the detector (debug builds
/// only; in release this module is compiled out and the stub is a
/// no-op). Exposed for the inversion regression tests, which must not
/// depend on the environment of the test runner.
pub fn set_lock_order_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// What kind of lock is being acquired (self-relock is only a
/// guaranteed deadlock for mutexes).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum LockKind {
    Mutex,
    RwLock,
}

/// RAII token for one tracked acquisition; popping the held stack on
/// drop is what keeps the per-thread view consistent. `id == 0` means
/// the acquisition happened while tracking was off.
pub(crate) struct Held {
    id: u64,
}

impl Drop for Held {
    fn drop(&mut self) {
        if self.id != 0 {
            HELD.with(|h| {
                let mut v = h.borrow_mut();
                if let Some(pos) = v.iter().rposition(|&x| x == self.id) {
                    v.remove(pos);
                }
            });
        }
    }
}

thread_local! {
    /// Lock ids currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// One recorded acquisition site: the first time the owning edge was
/// observed.
struct EdgeSite {
    thread: String,
    backtrace: Backtrace,
}

#[derive(Default)]
struct Graph {
    /// Adjacency: `adj[a]` holds every `b` such that some thread
    /// acquired `b` while `a` was its most recent held lock.
    adj: HashMap<u64, Vec<u64>>,
    sites: HashMap<(u64, u64), EdgeSite>,
}

impl Graph {
    /// Depth-first path from `from` to `to`, if one exists.
    fn path(&self, from: u64, to: u64) -> Option<Vec<u64>> {
        let mut stack = vec![vec![from]];
        let mut visited = vec![from];
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("path is never empty");
            if last == to {
                return Some(path);
            }
            if let Some(nexts) = self.adj.get(&last) {
                for &n in nexts {
                    if !visited.contains(&n) {
                        visited.push(n);
                        let mut p = path.clone();
                        p.push(n);
                        stack.push(p);
                    }
                }
            }
        }
        None
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

/// The lock's stable id, assigned from the global counter on first use.
fn id_of(cell: &AtomicU64) -> u64 {
    let v = cell.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match cell.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(current) => current,
    }
}

fn thread_label() -> String {
    let t = std::thread::current();
    t.name()
        .map_or_else(|| format!("{:?}", t.id()), String::from)
}

/// Tracking for a *blocking* acquisition. Runs **before** the real lock
/// call so an inversion is reported instead of deadlocking in it.
/// Panics with both acquisition backtraces when the new edge closes a
/// cycle, or on mutex self-relock.
pub(crate) fn acquire(cell: &AtomicU64, kind: LockKind) -> Held {
    if !lock_order_enabled() {
        return Held { id: 0 };
    }
    let id = id_of(cell);
    let (top, self_held) = HELD.with(|h| (h.borrow().last().copied(), h.borrow().contains(&id)));
    if self_held && kind == LockKind::Mutex {
        panic!(
            "nmcs lock-order: thread '{}' is re-acquiring mutex #{id} it already holds \
             (guaranteed deadlock)\ncurrent acquisition backtrace:\n{}",
            thread_label(),
            Backtrace::force_capture()
        );
    }
    if let Some(a) = top {
        if a != id {
            check_and_record_edge(a, id);
        }
    }
    HELD.with(|h| h.borrow_mut().push(id));
    Held { id }
}

/// Tracking for a successful `try_lock`: held-stack only, no edge, no
/// cycle check (see module docs).
pub(crate) fn acquire_try(cell: &AtomicU64) -> Held {
    if !lock_order_enabled() {
        return Held { id: 0 };
    }
    let id = id_of(cell);
    HELD.with(|h| h.borrow_mut().push(id));
    Held { id }
}

/// Records edge `a → b`, first checking whether a recorded path
/// `b ⇝ a` already exists — in which case the new edge closes an
/// ordering cycle and the detector aborts with every involved stack.
fn check_and_record_edge(a: u64, b: u64) {
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    if g.adj.get(&a).is_some_and(|v| v.contains(&b)) {
        return; // Edge already validated once.
    }
    if let Some(path) = g.path(b, a) {
        let mut report = format!(
            "nmcs lock-order inversion (potential deadlock) detected:\n  thread '{}' is \
             acquiring lock #{b} while holding lock #{a}, but the reverse ordering was \
             recorded earlier:\n",
            thread_label()
        );
        for pair in path.windows(2) {
            let (x, y) = (pair[0], pair[1]);
            report.push_str(&format!("    lock #{x} -> lock #{y}"));
            if let Some(site) = g.sites.get(&(x, y)) {
                report.push_str(&format!(
                    " first acquired in this order by thread '{}':\n{}\n",
                    site.thread, site.backtrace
                ));
            } else {
                report.push('\n');
            }
        }
        report.push_str(&format!(
            "  current (#{a} -> #{b}) acquisition backtrace:\n{}\n  (lock ids are assigned \
             in first-acquisition order; set RUST_BACKTRACE=1 for symbolised frames)",
            Backtrace::force_capture()
        ));
        drop(g);
        panic!("{report}");
    }
    g.adj.entry(a).or_default().push(b);
    g.sites.insert(
        (a, b),
        EdgeSite {
            thread: thread_label(),
            backtrace: Backtrace::force_capture(),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_unique() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let ia = id_of(&a);
        assert_eq!(id_of(&a), ia, "id must be stable");
        assert_ne!(id_of(&b), ia, "distinct locks get distinct ids");
    }

    #[test]
    fn graph_path_finds_transitive_routes() {
        let mut g = Graph::default();
        g.adj.insert(1, vec![2]);
        g.adj.insert(2, vec![3]);
        assert_eq!(g.path(1, 3), Some(vec![1, 2, 3]));
        assert_eq!(g.path(3, 1), None);
    }
}
