//! Minimal vendored stand-in for `crossbeam`: MPMC channels and scoped
//! threads, built on std primitives. The build environment has no network
//! access, so the workspace vendors the small API surface it uses:
//!
//! * [`channel::unbounded`] with cloneable [`channel::Sender`] /
//!   [`channel::Receiver`] (multi-producer **and** multi-consumer, which
//!   std's mpsc does not provide), `recv`, `recv_timeout`, `try_recv`,
//!   `iter`, `is_empty`;
//! * [`scope`] — scoped spawning on top of `std::thread::scope`, with
//!   crossbeam's `Result`-returning panic reporting.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by `send` when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (MPMC, unlike std mpsc).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake receivers so they observe
                // disconnection.
                let _guard = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .chan
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .chan
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Number of queued messages right now.
        pub fn len(&self) -> usize {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Blocking iterator: yields until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

use std::any::Any;

/// Scoped-thread scope; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope for spawning borrowing threads; returns `Err` with the
/// panic payload if any unjoined spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn mpmc_fifo_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn timeout_and_try_recv() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn many_producers_many_consumers() {
        let (tx, rx) = unbounded::<u64>();
        let total: u64 = super::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..100u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut handles = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                handles.push(s.spawn(move |_| rx.iter().count()));
            }
            handles.into_iter().map(|h| h.join().unwrap() as u64).sum()
        })
        .unwrap();
        assert_eq!(total, 400);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
