//! Minimal vendored stand-in for `proptest`, supporting the subset the
//! workspace's property tests use: the `proptest!` macro with a
//! `proptest_config` attribute, range and tuple strategies, `prop_map`,
//! `prop_oneof!`, `proptest::collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//!
//! * generation is deterministic per test (seeded from the test name), so
//!   failures are reproducible without a persistence file;
//! * no shrinking — the failing inputs are printed verbatim instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    ///
    /// `generate` is the object-safe core; the combinators require
    /// `Sized` so the trait can still be boxed.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property (from `prop_assert!`-style macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64-based deterministic generator.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic stream derived from the test's name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; modulo bias is irrelevant for test
        /// generation purposes.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each test runs `cases` times with fresh
/// deterministically-generated inputs; `prop_assert*` failures report the
/// inputs of the failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, cfg.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)+) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)+
        }
    };
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_respects_sizes(xs in crate::collection::vec(0u32..100, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0usize..4).prop_map(|x| x * 2),
            (10usize..14).prop_map(|x| x),
        ]) {
            prop_assert!(v < 8 || (10..14).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let gen = |name: &str| {
            let mut rng = TestRng::deterministic(name);
            (0..8)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }
}
