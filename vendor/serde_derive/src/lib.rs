//! Minimal vendored stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the workspace vendors
//! a tiny serde-compatible surface (see `vendor/serde`). This proc-macro
//! crate implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the shapes the workspace actually uses:
//!
//! * structs with named fields (honouring `#[serde(default)]`);
//! * enums whose variants are all unit variants (serialised as strings).
//!
//! Anything else (tuple structs, generics, data-carrying variants) panics
//! at expansion time with a clear message, so unsupported usage is caught
//! at compile time rather than producing silently wrong data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    default: bool,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Returns true if an attribute token pair (`#` + group) encodes
/// `#[serde(default)]`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(inner))) => {
            name.to_string() == "serde" && inner.stream().to_string().contains("default")
        }
        _ => false,
    }
}

/// Consumes leading attributes from `iter`, reporting whether any of them
/// was `#[serde(default)]`.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut has_default = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // Optional `!` for inner attributes (not expected, but harmless).
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '!' {
                        iter.next();
                    }
                }
                match iter.next() {
                    Some(TokenTree::Group(g)) => {
                        if attr_is_serde_default(&g) {
                            has_default = true;
                        }
                    }
                    other => panic!("malformed attribute: expected [..] group, got {other:?}"),
                }
            }
            _ => return has_default,
        }
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_vis(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => {
            panic!("vendored serde_derive only supports brace-bodied items; `{name}` has {other:?}")
        }
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body.stream()),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_unit_variants(body.stream()),
        },
        other => panic!("expected struct or enum, got `{other}`"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        if iter.peek().is_none() {
            return fields;
        }
        let default = skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let fname = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return fields,
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{fname}`, got {other:?}"),
        }
        // Collect type tokens until a comma at angle-bracket depth 0.
        let mut ty = String::new();
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                Some(tok) => {
                    if let TokenTree::Punct(p) = tok {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            _ => {}
                        }
                    }
                    ty.push_str(&tok.to_string());
                    ty.push(' ');
                    iter.next();
                }
            }
        }
        fields.push(Field {
            name: fname,
            ty: ty.trim().to_string(),
            default,
        });
    }
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        if iter.peek().is_none() {
            return variants;
        }
        skip_attrs(&mut iter);
        let vname = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            other => panic!("expected variant name, got {other:?}"),
        };
        match iter.peek() {
            Some(TokenTree::Group(_)) => {
                panic!("vendored serde_derive only supports unit enum variants; `{vname}` carries data")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip tokens up to the next comma.
                iter.next();
                loop {
                    match iter.next() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => {}
                    }
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                iter.next();
            }
            None => {}
            other => panic!("unexpected token after variant `{vname}`: {other:?}"),
        }
        variants.push(vname);
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let missing = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(::serde::Error::missing_field(\"{}\"))",
                        f.name
                    )
                };
                inits.push_str(&format!(
                    "{0}: match v.get_field(\"{0}\") {{\n\
                         ::std::option::Option::Some(x) => \
                             <{1} as ::serde::Deserialize>::from_value(x)?,\n\
                         ::std::option::Option::None => {2},\n\
                     }},\n",
                    f.name, f.ty, missing
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}
