//! Minimal vendored stand-in for `serde_json`, matching the surface the
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`].
//!
//! Serialisation goes through the vendored `serde::Value` tree; the JSON
//! writer/reader below round-trips everything the vendored `Serialize` /
//! `Deserialize` impls can produce (objects, arrays, strings with
//! escapes, the three number shapes, booleans, null).

use serde::Value;
use std::fmt::Write as _;

/// JSON error (serialisation never fails; parsing reports position).
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's float Display is shortest-round-trip, so the
                // value survives parse → write → parse unchanged. Keep a
                // float marker so integral floats stay floats.
                let text = format!("{f}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(x, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn floats_survive_round_trip() {
        for f in [0.1, -3.25e-9, 1e300, 123456.75] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f, "{json}");
        }
        // Integral floats keep a float marker.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn unicode_strings_round_trip() {
        for s in ["héllo", "日本語", "a\"b\\c", "tab\tnewline\n"] {
            let json = to_string(&s.to_string()).unwrap();
            assert_eq!(from_str::<String>(&json).unwrap(), s, "{json}");
        }
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
