//! Property tests of the unified API's budget and cancellation
//! semantics, across every backend:
//!
//! * a deadline or `max_playouts` budget halts every backend within
//!   tolerance and still returns a valid best-so-far sequence (the
//!   report's sequence replays from the root to the report's score);
//! * a pre-cancelled [`CancelToken`] returns promptly with
//!   `SearchReport::interrupted == Some(Cancelled)`;
//! * an *unhit* budget leaves results bit-identical to the unbudgeted
//!   run — the budget checks provably do not perturb the RNG stream.

use pnmcs::games::{SameGame, SumGame};
use pnmcs::morpion::{cross_board, Variant};
use pnmcs::search::{Budget, CancelToken, CodedGame, Game, Interruption, SearchReport, SearchSpec};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Every deterministic strategy of the unified API, smallest-sensible
/// shapes, with the given seed. Tree-parallel joins at one worker (the
/// deterministic form; its multi-worker shape gets its own tests below,
/// since a schedule-dependent backend cannot promise bit-identity).
fn all_specs(seed: u64) -> Vec<SearchSpec> {
    vec![
        SearchSpec::nested(2).seed(seed).build(),
        SearchSpec::nrpa(1).seed(seed).build(),
        SearchSpec::uct().seed(seed).build(),
        SearchSpec::flat_mc(256).seed(seed).build(),
        SearchSpec::iterated_sampling(2).seed(seed).build(),
        SearchSpec::beam(3, 1).seed(seed).build(),
        SearchSpec::sample().seed(seed).build(),
        SearchSpec::simulated_annealing_with(pnmcs::search::AnnealingConfig {
            iterations: 2_000,
            ..Default::default()
        })
        .seed(seed)
        .build(),
        SearchSpec::leaf(1, 4, 2).seed(seed).build(),
        SearchSpec::root_parallel(2, 2).seed(seed).build(),
        SearchSpec::tree_parallel(1).seed(seed).build(),
    ]
}

mod common;
use common::test_workers;

fn assert_replays<G>(game: &G, report: &SearchReport<G::Move>, label: &str)
where
    G: Game,
{
    let mut replay = game.clone();
    for mv in &report.sequence {
        replay.play(mv);
    }
    assert_eq!(
        replay.score(),
        report.score,
        "{label}: report sequence must replay to the report score"
    );
}

fn with_budget(spec: &SearchSpec, budget: Budget) -> SearchSpec {
    SearchSpec {
        algorithm: spec.algorithm.clone(),
        budget,
        seed: spec.seed,
    }
}

fn budget_halts_everything<G>(game: &G, seed: u64)
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    for spec in all_specs(seed) {
        let label = spec.algorithm.label();

        // (a) playout budget: halts with a valid best-so-far sequence.
        let budgeted = with_budget(&spec, Budget::none().with_max_playouts(40));
        let report = budgeted.run(game);
        assert_replays(game, &report, label);
        // A 40-playout cap leaves at most a modest overshoot (each
        // worker may finish the playout it is in when the cap trips).
        assert!(
            report.stats.playouts <= 40 + 16,
            "{label}: {} playouts blew through the cap",
            report.stats.playouts
        );

        // (b) an elapsed deadline halts promptly and stays consistent.
        let deadline = with_budget(&spec, Budget::none().with_deadline(Duration::ZERO));
        let t0 = Instant::now();
        let report = deadline.run(game);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "{label}: elapsed-deadline run took {:?}",
            t0.elapsed()
        );
        assert_replays(game, &report, label);
    }
}

fn precancelled_returns_promptly<G>(game: &G, seed: u64)
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    let token = CancelToken::new();
    token.cancel();
    for spec in all_specs(seed) {
        let label = spec.algorithm.label();
        let t0 = Instant::now();
        let report = spec.run_cancellable(game, &token);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "{label}: pre-cancelled run took {:?}",
            t0.elapsed()
        );
        assert_eq!(
            report.interrupted,
            Some(Interruption::Cancelled),
            "{label}: interrupted must record the cancellation"
        );
        assert_replays(game, &report, label);
    }
}

fn unhit_budget_is_bit_identical<G>(game: &G, seed: u64)
where
    G: CodedGame + Send + Sync,
    G::Move: Send + Sync,
{
    // Limits far above what any of these runs can reach, plus a live
    // cancel token that never fires: every check is active on the hot
    // path, none may trip — and none may touch the RNG.
    let huge = Budget::none()
        .with_deadline(Duration::from_secs(3600))
        .with_max_playouts(u64::MAX / 2)
        .with_max_nodes(u64::MAX / 2);
    let token = CancelToken::new();
    for spec in all_specs(seed) {
        let label = spec.algorithm.label();
        let plain = spec.run(game);
        let budgeted = with_budget(&spec, huge.clone()).run_cancellable(game, &token);
        assert_eq!(plain.score, budgeted.score, "{label}");
        assert_eq!(plain.sequence, budgeted.sequence, "{label}");
        assert_eq!(
            plain.stats, budgeted.stats,
            "{label}: budget checks perturbed the search"
        );
        assert_eq!(budgeted.interrupted, None, "{label}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn budgets_halt_every_backend_with_valid_results(seed in 0u64..1000) {
        budget_halts_everything(&SumGame::random(6, 4, seed), seed);
    }

    #[test]
    fn budgets_halt_on_samegame_too(seed in 0u64..1000) {
        budget_halts_everything(&SameGame::random(6, 6, 3, seed), seed);
    }

    #[test]
    fn pre_cancelled_tokens_return_promptly(seed in 0u64..1000) {
        precancelled_returns_promptly(&SumGame::random(6, 4, seed), seed);
    }

    #[test]
    fn unhit_budgets_are_bit_identical(seed in 0u64..1000) {
        unhit_budget_is_bit_identical(&SumGame::random(5, 3, seed), seed);
    }
}

#[test]
fn deadline_interrupts_a_long_morpion_search_mid_flight() {
    // A real mid-search deadline (not pre-elapsed): a level-3 search on
    // the reduced cross runs for minutes uninterrupted; 50 ms must stop
    // it within a small multiple of the deadline and still hand back a
    // replayable game.
    let board = cross_board(Variant::Disjoint, 3);
    let t0 = Instant::now();
    let report = SearchSpec::nested(3).seed(1).deadline_ms(50).run(&board);
    let elapsed = t0.elapsed();
    assert_eq!(report.interrupted, Some(Interruption::Deadline));
    assert!(
        elapsed < Duration::from_secs(2),
        "50 ms deadline took {elapsed:?}"
    );
    assert_replays(&board, &report, "nested-3-deadline");
    assert!(report.score > 0, "best-so-far must not be empty-handed");
}

#[test]
fn mid_search_cancellation_from_another_thread_is_prompt() {
    let board = cross_board(Variant::Disjoint, 3);
    let token = CancelToken::new();
    let spec = SearchSpec::nested(3).seed(2).build();
    let (report, cancel_latency) = std::thread::scope(|scope| {
        let searcher = {
            let token = token.clone();
            let board = &board;
            let spec = &spec;
            scope.spawn(move || spec.run_cancellable(board, &token))
        };
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        token.cancel();
        let report = searcher.join().expect("search thread");
        (report, t0.elapsed())
    });
    assert_eq!(report.interrupted, Some(Interruption::Cancelled));
    assert!(
        cancel_latency < Duration::from_secs(2),
        "cancellation latency {cancel_latency:?}"
    );
    assert_replays(&board, &report, "nested-3-cancel");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Multi-worker tree-parallel cannot promise bit-identity, but it
    /// must always honour budgets and hand back a replayable line.
    #[test]
    fn budgets_halt_multi_worker_tree_parallel_with_replayable_results(seed in 0u64..1000) {
        let workers = test_workers();
        let game = SameGame::random(7, 7, 3, seed);
        let spec = SearchSpec::tree_parallel(workers).seed(seed).build();

        // (a) playout cap.
        let budgeted = with_budget(&spec, Budget::none().with_max_playouts(40));
        let report = budgeted.run(&game);
        assert_replays(&game, &report, "tree-parallel/playouts");
        // Each worker may finish the iteration it is in when the cap
        // trips, so the overshoot is bounded by the worker count.
        assert!(
            report.stats.playouts <= 40 + 16 + workers as u64,
            "{} playouts blew through the cap",
            report.stats.playouts
        );

        // (b) node (expansion) cap bounds the shared tree.
        let budgeted = with_budget(&spec, Budget::none().with_max_nodes(50));
        let report = budgeted.run(&game);
        assert_replays(&game, &report, "tree-parallel/nodes");
        assert!(
            report.stats.expansions <= 50 + 16 + workers as u64,
            "{} expansions blew through the node cap",
            report.stats.expansions
        );

        // (c) an elapsed deadline halts promptly.
        let budgeted = with_budget(&spec, Budget::none().with_deadline(Duration::ZERO));
        let t0 = Instant::now();
        let report = budgeted.run(&game);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "elapsed-deadline tree-parallel run took {:?}",
            t0.elapsed()
        );
        assert_replays(&game, &report, "tree-parallel/deadline");

        // (d) a pre-cancelled token stops it before real work.
        let token = CancelToken::new();
        token.cancel();
        let report = spec.run_cancellable(&game, &token);
        assert_eq!(report.interrupted, Some(Interruption::Cancelled));
        assert_replays(&game, &report, "tree-parallel/cancel");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The playout-budget over-issue bound: tree-parallel at *any*
    /// width, lock strategy, stats mode, and leaf-batch setting never
    /// exceeds `max_playouts` by more than `threads` in-flight rollouts
    /// — one per worker, the iteration each worker may already have
    /// claimed when the cap trips. (Batched leaves count their playout
    /// at claim time precisely so a slab cannot widen this bound to
    /// `threads × batch`.)
    #[test]
    fn tree_parallel_playout_overissue_is_bounded_by_threads(seed in 0u64..1000) {
        use pnmcs::search::{LockStrategy, StatsMode};
        let game = SameGame::random(6, 6, 3, seed);
        let cap = 40u64;
        for (threads, leaf_batch) in [(1usize, 0usize), (2, 0), (4, 0), (8, 0), (2, 4), (4, 4)] {
            for (lock, stats) in [
                (LockStrategy::Sharded, StatsMode::WuUct),
                (LockStrategy::Global, StatsMode::VirtualLoss),
            ] {
                let spec = SearchSpec::tree_parallel(threads)
                    .lock_strategy(lock)
                    .stats_mode(stats)
                    .leaf_batch(leaf_batch)
                    .seed(seed)
                    .max_playouts(cap)
                    .build();
                let report = spec.run(&game);
                let label = format!(
                    "tree-parallel t{threads} b{leaf_batch} {lock:?}/{stats:?} seed {seed}"
                );
                assert!(
                    report.stats.playouts <= cap + threads as u64,
                    "{label}: {} playouts overshot the {cap} cap by more than {threads} in-flight rollouts",
                    report.stats.playouts
                );
                assert_replays(&game, &report, &label);
            }
        }
    }

    /// The shared iteration counter never double-counts a batched leaf:
    /// an unbudgeted batched run executes exactly `iterations` playouts
    /// (each claimed descent is counted once, its slab rollout never
    /// again), at every width.
    #[test]
    fn batched_leaves_are_never_double_counted(seed in 0u64..1000) {
        let game = SameGame::random(6, 6, 3, seed);
        let iterations = 200usize;
        let config = pnmcs::search::UctConfig {
            iterations,
            ..Default::default()
        };
        for (threads, leaf_batch) in [(1usize, 4usize), (2, 4), (4, 8)] {
            let report = SearchSpec::tree_parallel_with(config.clone(), threads)
                .leaf_batch(leaf_batch)
                .seed(seed)
                .run(&game);
            assert_eq!(
                report.stats.playouts, iterations as u64,
                "t{threads} b{leaf_batch} seed {seed}: batched playout total must equal the iteration budget exactly"
            );
            assert_replays(&game, &report, "tree-parallel/batched-exact");
        }
    }
}

#[test]
fn node_budget_bounds_uct_tree_growth() {
    let board = SameGame::random(8, 8, 4, 5);
    let report = SearchSpec::uct().seed(3).max_nodes(200).run(&board);
    assert_eq!(report.interrupted, Some(Interruption::NodeBudget));
    assert!(
        report.stats.expansions <= 200 + 8,
        "expansions {} blew through the node cap",
        report.stats.expansions
    );
    assert_replays(&board, &report, "uct-node-budget");
}
