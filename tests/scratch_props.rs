//! Property tests of the scratch-state protocol (apply/undo) across all
//! five game domains:
//!
//! * `apply` followed by `undo` — including chains of applies unwound in
//!   LIFO order — restores an *identical* observable state: score, move
//!   count, and the legal-move list **in order** (order feeds the search
//!   RNG, so it is part of the contract);
//! * every search algorithm produces bit-identical results on the undo
//!   path and the clone path for pinned seeds (asserted via the
//!   [`SnapshotOnly`] adapter, which hides the fast path);
//! * the type-erased [`DynGame`] used by the engine preserves both
//!   properties.

// Exercises the deprecated free-function shims on purpose: clone-vs-
// undo bit-identity must keep holding for the historical surface.
#![allow(deprecated)]
use pnmcs::games::{NeedleLadder, SameGame, Sudoku, SumGame, TspGame, TspInstance};
use pnmcs::morpion::{cross_board, Variant};
use pnmcs::search::baselines::flat_monte_carlo;
use pnmcs::search::{nested, uct, Game, NestedConfig, Rng, SnapshotOnly, UctConfig};
use pnmcs::search::{nrpa, CodedGame, DynGame, NrpaConfig};
use proptest::prelude::*;

/// Observable surface of a position: score, move count, and the ordered
/// legal-move list (printed, so one helper serves every move type).
fn observe<G: Game>(g: &G) -> (i64, usize, Vec<String>) {
    let mut moves = Vec::new();
    g.legal_moves(&mut moves);
    (
        g.score(),
        g.moves_played(),
        moves.iter().map(|m| format!("{m:?}")).collect(),
    )
}

/// Walks a random game, and at every step round-trips an apply/undo
/// chain of up to `chain` moves, asserting the observable state is
/// restored exactly.
fn assert_round_trips<G: Game>(root: &G, seed: u64, chain: usize) {
    assert!(root.supports_undo(), "game under test must opt in");
    let mut g = root.clone();
    let mut rng = Rng::seeded(seed);
    let mut moves = Vec::new();
    let mut steps = 0;
    loop {
        g.legal_moves_into(&mut moves);
        if moves.is_empty() || steps > 60 {
            break;
        }
        let before = observe(&g);
        // Apply a random chain, then unwind it in LIFO order.
        let mut tokens = Vec::new();
        let mut chain_moves = Vec::new();
        for _ in 0..chain {
            g.legal_moves_into(&mut chain_moves);
            if chain_moves.is_empty() {
                break;
            }
            let mv = chain_moves[rng.below(chain_moves.len())].clone();
            tokens.push(g.apply(&mv));
        }
        while let Some(token) = tokens.pop() {
            g.undo(token);
        }
        let after = observe(&g);
        assert_eq!(before, after, "undo must restore the observable state");

        let mv = moves[rng.below(moves.len())].clone();
        g.play(&mv);
        steps += 1;
    }
}

/// Asserts the undo path and the clone path agree bit-for-bit on every
/// search algorithm for a pinned seed.
fn assert_paths_agree<G: CodedGame>(game: &G, seed: u64) {
    let slow_game = SnapshotOnly(game.clone());

    let fast = nested(game, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
    let slow = nested(
        &slow_game,
        1,
        &NestedConfig::paper(),
        &mut Rng::seeded(seed),
    );
    assert_eq!(fast.score, slow.score, "nested score");
    assert_eq!(fast.sequence, slow.sequence, "nested sequence");
    assert_eq!(fast.stats, slow.stats, "nested stats");

    let fast = flat_monte_carlo(game, 8, &mut Rng::seeded(seed));
    let slow = flat_monte_carlo(&slow_game, 8, &mut Rng::seeded(seed));
    assert_eq!(fast.score, slow.score, "flat-mc score");
    assert_eq!(fast.sequence, slow.sequence, "flat-mc sequence");

    let ucfg = UctConfig {
        iterations: 60,
        ..Default::default()
    };
    let fast = uct(game, &ucfg, &mut Rng::seeded(seed));
    let slow = uct(&slow_game, &ucfg, &mut Rng::seeded(seed));
    assert_eq!(fast.score, slow.score, "uct score");
    assert_eq!(fast.sequence, slow.sequence, "uct sequence");

    let ncfg = NrpaConfig {
        iterations: 5,
        alpha: 1.0,
    };
    let fast = nrpa(game, 1, &ncfg, &mut Rng::seeded(seed));
    let slow = nrpa(&slow_game, 1, &ncfg, &mut Rng::seeded(seed));
    assert_eq!(fast.score, slow.score, "nrpa score");
    assert_eq!(fast.sequence, slow.sequence, "nrpa sequence");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn samegame_round_trips(seed in 0u64..500, w in 5usize..10, h in 5usize..10) {
        let g = SameGame::random(w, h, 3, seed);
        assert_round_trips(&g, seed, 3);
    }

    #[test]
    fn tsp_round_trips(seed in 0u64..500, n in 5usize..14) {
        let g = TspGame::new(TspInstance::random(n, seed), None);
        assert_round_trips(&g, seed, 3);
        let g = TspGame::new(TspInstance::random(n, seed), Some(3));
        assert_round_trips(&g, seed, 2);
    }

    #[test]
    fn sudoku_round_trips(seed in 0u64..500, holes in 10usize..50) {
        let g = Sudoku::puzzle(3, holes, seed);
        assert_round_trips(&g, seed, 3);
    }

    #[test]
    fn toy_round_trips(seed in 0u64..500, depth in 2usize..7) {
        assert_round_trips(&SumGame::random(depth, 4, seed), seed, 3);
        assert_round_trips(&NeedleLadder::new(depth.max(2)), seed, 2);
    }

    #[test]
    fn morpion_round_trips(seed in 0u64..200) {
        // Both rule variants: their constraint bits differ.
        assert_round_trips(&cross_board(Variant::Disjoint, 3), seed, 3);
        assert_round_trips(&cross_board(Variant::Touching, 3), seed, 3);
    }

    #[test]
    fn samegame_paths_bit_identical(seed in 0u64..300) {
        assert_paths_agree(&SameGame::random(6, 6, 3, seed), seed);
    }

    #[test]
    fn tsp_paths_bit_identical(seed in 0u64..300) {
        assert_paths_agree(&TspGame::new(TspInstance::random(8, seed), None), seed);
    }

    #[test]
    fn sudoku_paths_bit_identical(seed in 0u64..300) {
        assert_paths_agree(&Sudoku::puzzle(3, 30, seed), seed);
    }

    #[test]
    fn toy_paths_bit_identical(seed in 0u64..300) {
        assert_paths_agree(&SumGame::random(5, 3, seed), seed);
        assert_paths_agree(&NeedleLadder::new(7), seed);
    }

    #[test]
    fn erased_games_round_trip_and_agree(seed in 0u64..200) {
        // The engine's view: a DynGame over a fast-path game keeps both
        // protocol properties through the erasure.
        let typed = SumGame::random(5, 3, seed);
        let erased = DynGame::new(typed.clone());
        prop_assert!(erased.supports_undo());
        assert_round_trips(&erased, seed, 3);

        let fast = nested(&erased, 2, &NestedConfig::paper(), &mut Rng::seeded(seed));
        let slow = nested(
            &DynGame::new(SnapshotOnly(typed)),
            2,
            &NestedConfig::paper(),
            &mut Rng::seeded(seed),
        );
        prop_assert_eq!(fast.score, slow.score);
        prop_assert_eq!(fast.sequence, slow.sequence);
        prop_assert_eq!(fast.stats, slow.stats);
    }

    #[test]
    fn morpion_paths_bit_identical(seed in 0u64..100) {
        let b = cross_board(Variant::Disjoint, 2);
        let fast = nested(&b, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        let slow = nested(&SnapshotOnly(b), 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        prop_assert_eq!(fast.score, slow.score);
        prop_assert_eq!(fast.sequence, slow.sequence);
        prop_assert_eq!(fast.stats, slow.stats);
    }
}
