//! Property-based tests of the search algorithms: every search's
//! returned sequence must replay to its returned score, on every domain,
//! under every configuration.

// Exercises the deprecated free-function shims on purpose: the
// properties pin the historical surface (unified-API coverage lives
// in tests/spec_api.rs and tests/budget_props.rs).
#![allow(deprecated)]
use pnmcs::games::{NeedleLadder, SameGame, SumGame, TspGame, TspInstance};
use pnmcs::search::baselines::{
    beam_search, flat_monte_carlo, iterated_sampling, simulated_annealing, AnnealingConfig,
};
use pnmcs::search::{nested, sample, Game, MemoryPolicy, NestedConfig, Rng};
use proptest::prelude::*;

fn replay_score<G: Game>(game: &G, seq: &[G::Move]) -> i64 {
    let mut g = game.clone();
    for mv in seq {
        g.play(mv);
    }
    g.score()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn nested_sequences_replay_to_their_score_on_sum_games(
        seed in 0u64..1000,
        depth in 2usize..6,
        width in 2usize..5,
        level in 0u32..3,
    ) {
        let g = SumGame::random(depth, width, seed);
        let r = nested(&g, level, &NestedConfig::paper(), &mut Rng::seeded(seed));
        prop_assert_eq!(replay_score(&g, &r.sequence), r.score);
        prop_assert_eq!(r.sequence.len(), depth);
    }

    #[test]
    fn greedy_policy_sequences_also_replay(seed in 0u64..1000) {
        let g = SumGame::random(5, 3, seed);
        let cfg = NestedConfig { memory: MemoryPolicy::Greedy, playout_cap: None };
        let r = nested(&g, 1, &cfg, &mut Rng::seeded(seed));
        prop_assert_eq!(replay_score(&g, &r.sequence), r.score);
    }

    #[test]
    fn capped_searches_stay_consistent(seed in 0u64..500, cap in 1usize..6) {
        let g = SumGame::random(6, 3, seed);
        let cfg = NestedConfig { memory: MemoryPolicy::Memorise, playout_cap: Some(cap) };
        let r = nested(&g, 1, &cfg, &mut Rng::seeded(seed));
        // The top-level game still runs to termination.
        prop_assert_eq!(r.sequence.len(), 6);
        prop_assert_eq!(replay_score(&g, &r.sequence), r.score);
    }

    #[test]
    fn samegame_search_results_replay(seed in 0u64..200) {
        let g = SameGame::random(6, 6, 3, seed);
        let r = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        prop_assert_eq!(replay_score(&g, &r.sequence), r.score);
    }

    #[test]
    fn tsp_search_results_replay(seed in 0u64..200) {
        let g = TspGame::new(TspInstance::random(10, seed), None);
        let r = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        prop_assert_eq!(replay_score(&g, &r.sequence), r.score);
        prop_assert_eq!(r.sequence.len(), 9);
    }

    #[test]
    fn baseline_sequences_replay(seed in 0u64..200) {
        let g = SumGame::random(5, 3, seed);
        let flat = flat_monte_carlo(&g, 8, &mut Rng::seeded(seed));
        prop_assert_eq!(replay_score(&g, &flat.sequence), flat.score);
        let iter = iterated_sampling(&g, 2, &mut Rng::seeded(seed));
        prop_assert_eq!(replay_score(&g, &iter.sequence), iter.score);
        let beam = beam_search(&g, 3, 1, &mut Rng::seeded(seed));
        prop_assert_eq!(replay_score(&g, &beam.sequence), beam.score);
        let sa = simulated_annealing(
            &g,
            &AnnealingConfig { iterations: 50, ..Default::default() },
            &mut Rng::seeded(seed),
        );
        prop_assert_eq!(replay_score(&g, &sa.sequence), sa.score);
    }

    #[test]
    fn nested_never_scores_below_the_worst_leaf(seed in 0u64..300) {
        // On SumGame all leaves are reachable; NMCS must at least match a
        // single random playout from the same seed family in expectation,
        // but pointwise it must stay within the game's score range.
        let g = SumGame::random(4, 3, seed);
        let r = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        prop_assert!(r.score >= 0);
        prop_assert!(r.score <= g.optimum());
    }

    #[test]
    fn needle_ladder_solved_at_any_depth(depth in 3usize..12, seed in 0u64..100) {
        let g = NeedleLadder::new(depth);
        let r = nested(&g, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        prop_assert_eq!(r.score, g.optimum());
    }

    #[test]
    fn sample_is_always_a_complete_game(seed in 0u64..500) {
        let g = SumGame::random(7, 4, seed);
        let r = sample(&g, &mut Rng::seeded(seed));
        prop_assert_eq!(r.sequence.len(), 7);
        prop_assert_eq!(r.stats.playouts, 1);
        prop_assert_eq!(replay_score(&g, &r.sequence), r.score);
    }
}

#[test]
fn level_improvement_is_statistical_not_pointwise() {
    // Averaged over seeds, each level dominates the previous one on
    // SumGame; this is the core NMCS claim (paper §I) in testable form.
    let g = SumGame::random(8, 4, 99);
    let avg = |level: u32| -> f64 {
        (0..30)
            .map(|s| nested(&g, level, &NestedConfig::paper(), &mut Rng::seeded(s)).score as f64)
            .sum::<f64>()
            / 30.0
    };
    let l0 = avg(0);
    let l1 = avg(1);
    let l2 = avg(2);
    assert!(
        l1 > l0 + 10.0,
        "level 1 ({l1}) must clearly beat level 0 ({l0})"
    );
    assert!(l2 > l1, "level 2 ({l2}) must beat level 1 ({l1})");
}
