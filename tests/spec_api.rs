//! Integration tests of the unified `SearchSpec` front door on the real
//! domains: every deprecated free-function shim produces results equal
//! to the equivalent spec run seed-for-seed, specs round-trip through
//! JSON (the `tables --spec` reproducibility contract), and the erased
//! `AnySearcher` form matches the typed runs.
//!
//! The deprecated shims are called deliberately: shim ≡ spec is the
//! contract under test.
#![allow(deprecated)]

use pnmcs::games::{SameGame, TspGame, TspInstance};
use pnmcs::morpion::{cross_board, Variant};
use pnmcs::search::baselines::{
    beam_search, flat_monte_carlo, iterated_sampling, simulated_annealing,
};
use pnmcs::search::{
    decode_report, nested, nrpa, uct, AnnealingConfig, AnySearcher, DynGame, NestedConfig,
    NrpaConfig, Rng, SearchReport, SearchSpec, UctConfig,
};
use pnmcs::search::{Game, MemoryPolicy};

fn assert_matches<M: PartialEq + std::fmt::Debug>(
    report: &SearchReport<M>,
    result: &pnmcs::search::SearchResult<M>,
    label: &str,
) {
    assert_eq!(report.score, result.score, "{label} score");
    assert_eq!(report.sequence, result.sequence, "{label} sequence");
    assert_eq!(report.stats, result.stats, "{label} stats");
    assert!(report.interrupted.is_none(), "{label} interrupted");
}

#[test]
fn shims_equal_specs_on_morpion_seed_for_seed() {
    let board = cross_board(Variant::Disjoint, 3);
    for seed in [1u64, 2009] {
        let spec_run = SearchSpec::nested(1).seed(seed).run(&board);
        let shim = nested(&board, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "nested");

        let greedy = SearchSpec::nested(1)
            .memory(MemoryPolicy::Greedy)
            .seed(seed)
            .run(&board);
        let shim = nested(&board, 1, &NestedConfig::greedy(), &mut Rng::seeded(seed));
        assert_matches(&greedy, &shim, "nested-greedy");

        let cfg = NrpaConfig::with_iterations(10);
        let spec_run = SearchSpec::nrpa_with(1, cfg.clone()).seed(seed).run(&board);
        let shim = nrpa(&board, 1, &cfg, &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "nrpa");

        let ucfg = UctConfig {
            iterations: 300,
            ..UctConfig::default()
        };
        let spec_run = SearchSpec::uct_with(ucfg.clone()).seed(seed).run(&board);
        let shim = uct(&board, &ucfg, &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "uct");
    }
}

#[test]
fn shims_equal_specs_on_samegame_and_tsp() {
    let sg = SameGame::random(7, 7, 3, 4);
    let tsp = TspGame::new(TspInstance::random(10, 4), None);
    for seed in [3u64, 77] {
        let spec_run = SearchSpec::flat_mc(64).seed(seed).run(&sg);
        let shim = flat_monte_carlo(&sg, 64, &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "flat-mc");

        let spec_run = SearchSpec::iterated_sampling(2).seed(seed).run(&sg);
        let shim = iterated_sampling(&sg, 2, &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "iterated-sampling");

        let spec_run = SearchSpec::beam(4, 2).seed(seed).run(&tsp);
        let shim = beam_search(&tsp, 4, 2, &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "beam");

        let spec_run = SearchSpec::nested(2).seed(seed).run(&tsp);
        let shim = nested(&tsp, 2, &NestedConfig::paper(), &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "nested-tsp");

        let acfg = AnnealingConfig {
            iterations: 1_500,
            ..Default::default()
        };
        let spec_run = SearchSpec::simulated_annealing_with(acfg.clone())
            .seed(seed)
            .run(&sg);
        let shim = simulated_annealing(&sg, &acfg, &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "simulated-annealing-samegame");

        let spec_run = SearchSpec::simulated_annealing_with(acfg.clone())
            .seed(seed)
            .run(&tsp);
        let shim = simulated_annealing(&tsp, &acfg, &mut Rng::seeded(seed));
        assert_matches(&spec_run, &shim, "simulated-annealing-tsp");
    }
}

#[test]
fn simulated_annealing_spec_round_trips_and_reruns_identically() {
    // The last baseline joins the `tables --spec '<json>'` contract:
    // serialise, re-parse, rerun, and the reports agree bit-for-bit.
    let sg = SameGame::random(7, 7, 3, 6);
    let spec = SearchSpec::simulated_annealing_with(AnnealingConfig {
        iterations: 800,
        t_initial: 6.0,
        t_final: 0.02,
    })
    .seed(2009)
    .build();
    let json = serde_json::to_string(&spec).unwrap();
    let pasted: SearchSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, pasted);
    let first = spec.run(&sg);
    let second = pasted.run(&sg);
    assert_eq!(first.score, second.score);
    assert_eq!(first.sequence, second.sequence);
    assert_eq!(first.stats, second.stats);

    // The sequence replays (annealing reports real lines, not vectors).
    let mut replay = sg;
    for mv in &first.sequence {
        replay.play(mv);
    }
    assert_eq!(replay.score(), first.score);
}

#[test]
fn a_pasted_spec_json_reproduces_a_run_exactly() {
    // The `tables --spec '<json>'` contract: serialise, re-parse, rerun,
    // and the two reports agree bit-for-bit (scores, sequences, stats).
    let sg = SameGame::random(8, 8, 4, 11);
    let spec = SearchSpec::leaf(1, 4, 3).seed(2009).build();
    let first = spec.run(&sg);
    let json = serde_json::to_string(&spec).unwrap();
    let pasted: SearchSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, pasted);
    let second = pasted.run(&sg);
    assert_eq!(first.score, second.score);
    assert_eq!(first.sequence, second.sequence);
    assert_eq!(first.stats, second.stats);
    assert_eq!(first.client_jobs, second.client_jobs);

    // Reports themselves round-trip too (persisted sweep rows).
    let report_json = serde_json::to_string(&first).unwrap();
    let back: SearchReport<pnmcs::games::Tap> = serde_json::from_str(&report_json).unwrap();
    assert_eq!(back.score, first.score);
    assert_eq!(back.sequence, first.sequence);
    assert_eq!(back.stats, first.stats);
    assert_eq!(back.seed, first.seed);
}

#[test]
fn erased_searcher_matches_typed_searcher() {
    let sg = SameGame::random(6, 6, 3, 8);
    let specs: Vec<SearchSpec> = vec![
        SearchSpec::nested(1).seed(5).build(),
        SearchSpec::nrpa(1).seed(5).build(),
        SearchSpec::uct().seed(5).build(),
        // Tree-parallel at one worker is deterministic, so erasure
        // transparency is assertable for the new backend too.
        SearchSpec::tree_parallel(1).seed(5).build(),
        SearchSpec::simulated_annealing_with(AnnealingConfig {
            iterations: 400,
            ..Default::default()
        })
        .seed(5)
        .build(),
    ];
    for spec in &specs {
        let typed = spec.run(&sg);
        let erased: &dyn AnySearcher = spec;
        let report = erased.search_erased(&DynGame::new(sg.clone()), None);
        let decoded = decode_report(&sg, &report);
        assert_eq!(decoded.score, typed.score, "{}", erased.label());
        assert_eq!(decoded.sequence, typed.sequence, "{}", erased.label());
        assert_eq!(decoded.stats, typed.stats, "{}", erased.label());
    }
}

#[test]
fn reports_subsume_the_legacy_result_shapes() {
    // One report answers what previously took three types: score +
    // sequence + stats (SearchResult), wall/work (ThreadReport), and the
    // leaf backend's (outcome, elapsed) tuple.
    let board = cross_board(Variant::Disjoint, 2);
    let report = SearchSpec::root_parallel(2, 2).seed(9).run(&board);
    assert!(report.elapsed.as_nanos() > 0);
    assert!(report.total_work() > 0);
    assert!(report.client_jobs > 0);
    let legacy = report.result();
    assert_eq!(legacy.score, report.score);
    assert_eq!(legacy.stats.work_units, report.total_work());
    let mut replay = board;
    for mv in &report.sequence {
        replay.play(mv);
    }
    assert_eq!(replay.score(), report.score);
}

#[test]
fn tree_parallel_knobs_round_trip_and_rerun_identically() {
    use pnmcs::search::{AlgorithmSpec, LockStrategy, StatsMode};
    let sg = SameGame::random(6, 6, 3, 4);
    let cfg = UctConfig {
        iterations: 150,
        ..UctConfig::default()
    };
    // Every knob combination serde-round-trips; the deterministic ones
    // (one worker) also rerun identically from the parsed spec.
    for lock in [LockStrategy::Global, LockStrategy::Sharded] {
        for stats in [StatsMode::VirtualLoss, StatsMode::WuUct] {
            for leaf_batch in [0usize, 4] {
                let spec = SearchSpec::tree_parallel_with(cfg.clone(), 1)
                    .lock_strategy(lock)
                    .stats_mode(stats)
                    .leaf_batch(leaf_batch)
                    .seed(9)
                    .build();
                let json = serde_json::to_string(&spec).unwrap();
                let back: SearchSpec = serde_json::from_str(&json).unwrap();
                assert_eq!(spec, back, "round-trip of {json}");
                let AlgorithmSpec::TreeParallel {
                    lock: l,
                    stats: s,
                    leaf_batch: b,
                    ..
                } = &back.algorithm
                else {
                    panic!("wrong variant from {json}");
                };
                assert_eq!((*l, *s, *b), (lock, stats, leaf_batch));
                let first = spec.run(&sg);
                let again = back.run(&sg);
                assert_eq!(first.score, again.score, "{json}");
                assert_eq!(first.sequence, again.sequence, "{json}");
                assert_eq!(first.stats, again.stats, "{json}");
            }
        }
    }
}

#[test]
fn pre_knob_tree_parallel_json_parses_to_the_defaults() {
    use pnmcs::search::{AlgorithmSpec, LockStrategy, StatsMode};
    // A PR-4 row knows nothing of lock/stats/leaf_batch; it must still
    // parse, landing on the current defaults.
    let json = r#"{"algorithm":{"kind":"tree_parallel","threads":4},"seed":7}"#;
    let spec: SearchSpec = serde_json::from_str(json).unwrap();
    let AlgorithmSpec::TreeParallel {
        threads,
        lock,
        stats,
        leaf_batch,
        ..
    } = &spec.algorithm
    else {
        panic!("wrong variant");
    };
    assert_eq!(*threads, 4);
    assert_eq!(*lock, LockStrategy::Sharded);
    assert_eq!(*stats, StatsMode::WuUct);
    assert_eq!(*leaf_batch, 0);
}

#[test]
fn tree_parallel_knobs_are_part_of_tag_identity() {
    use pnmcs::search::{AlgorithmSpec, LockStrategy, StatsMode};
    // The knobs change which search the racing workers perform, so two
    // specs differing only in a knob must not look alike to the
    // engine's duplicate detection.
    let base = AlgorithmSpec::tree_parallel(4);
    let with = |lock, stats, leaf_batch| {
        let mut a = AlgorithmSpec::tree_parallel(4);
        if let AlgorithmSpec::TreeParallel {
            lock: l,
            stats: s,
            leaf_batch: b,
            ..
        } = &mut a
        {
            *l = lock;
            *s = stats;
            *b = leaf_batch;
        }
        a
    };
    assert_ne!(
        base.tag(),
        with(LockStrategy::Global, StatsMode::WuUct, 0).tag()
    );
    assert_ne!(
        base.tag(),
        with(LockStrategy::Sharded, StatsMode::VirtualLoss, 0).tag()
    );
    assert_ne!(
        base.tag(),
        with(LockStrategy::Sharded, StatsMode::WuUct, 8).tag()
    );
    assert_eq!(
        base.tag(),
        with(LockStrategy::Sharded, StatsMode::WuUct, 0).tag()
    );
}
