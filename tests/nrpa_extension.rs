//! Extension X1: NRPA (Rosin 2011) — the algorithm that took the Morpion
//! record back from the paper — integrated with the rest of the library.
//!
//! Exercises the deprecated free-function shims on purpose: they are the
//! historical surface these regressions pin (the unified-API coverage
//! lives in tests/spec_api.rs and tests/budget_props.rs).
#![allow(deprecated)]

use pnmcs::morpion::{cross_board, standard_5d, GameRecord, Variant};
use pnmcs::search::driver::{drive, DriveBudget};
use pnmcs::search::{nested, nrpa, Game, NestedConfig, NrpaConfig, Rng};

#[test]
fn nrpa_plays_legal_verified_morpion_games() {
    let board = cross_board(Variant::Disjoint, 3);
    let cfg = NrpaConfig {
        iterations: 15,
        alpha: 1.0,
    };
    let r = nrpa(&board, 2, &cfg, &mut Rng::seeded(1));
    let mut replay = board;
    for mv in &r.sequence {
        replay.play(mv);
    }
    assert_eq!(replay.score(), r.score);
    let record = GameRecord::from_board(&replay, "nrpa test");
    assert_eq!(record.verify().unwrap() as i64, r.score);
}

#[test]
fn nrpa_level2_beats_single_level1_nmcs_on_average() {
    // At comparable playout budgets NRPA's learned policy should at least
    // match plain NMCS on the reduced cross; compare averages over seeds.
    let board = cross_board(Variant::Disjoint, 3);
    let trials = 5;
    let mut nrpa_sum = 0i64;
    let mut nmcs_sum = 0i64;
    for seed in 0..trials {
        let l1 = nested(&board, 1, &NestedConfig::paper(), &mut Rng::seeded(seed));
        let iters = (l1.stats.playouts as f64).sqrt().ceil() as usize;
        let cfg = NrpaConfig {
            iterations: iters,
            alpha: 1.0,
        };
        let r = nrpa(&board, 2, &cfg, &mut Rng::seeded(seed));
        nrpa_sum += r.score;
        nmcs_sum += l1.score;
    }
    assert!(
        nrpa_sum + 2 * trials as i64 >= nmcs_sum,
        "NRPA ({nrpa_sum}) should be competitive with NMCS level 1 ({nmcs_sum})"
    );
}

#[test]
fn nrpa_works_under_the_restart_driver() {
    let board = cross_board(Variant::Disjoint, 2);
    let cfg = NrpaConfig {
        iterations: 8,
        alpha: 1.0,
    };
    let report = drive(&board, 7, &DriveBudget::runs(4), |g, rng| {
        nrpa(g, 1, &cfg, rng)
    });
    assert_eq!(report.runs, 4);
    assert!(report.best.score > 0);
    // The winning seed reproduces the winning game.
    let again = nrpa(&board, 1, &cfg, &mut Rng::seeded(report.best_seed));
    assert_eq!(again.score, report.best.score);
    assert_eq!(again.sequence, report.best.sequence);
}

#[test]
fn nrpa_improves_with_iterations_on_morpion() {
    let board = standard_5d();
    let score_at = |iters: usize| {
        let cfg = NrpaConfig {
            iterations: iters,
            alpha: 1.0,
        };
        (0..3)
            .map(|s| nrpa(&board, 1, &cfg, &mut Rng::seeded(s)).score)
            .sum::<i64>()
    };
    let few = score_at(3);
    let many = score_at(30);
    assert!(
        many > few,
        "30 iterations ({many}) should beat 3 iterations ({few}) summed over seeds"
    );
}
