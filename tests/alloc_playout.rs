//! Zero-allocation playout sanitizer — the dynamic half of the hot-path
//! purity contract (the static half is the call-graph pass in
//! `crates/lint/src/hotpath.rs`).
//!
//! This binary installs the counting [`alloc_counter::CountingAllocator`]
//! as its global allocator; being a *separate test binary* is the cfg
//! gate — every other test binary and all production/bench builds keep
//! the system allocator untouched.
//!
//! The idiom (also documented in ROADMAP.md): warm a
//! [`PlayoutScratch`] by replaying the exact seeded playout that will be
//! measured (identical RNG stream ⇒ identical peak buffer sizes), then
//! wrap the replay in [`alloc_counter::assert_no_alloc`]. On the
//! scratch (apply/undo) path this must be **zero** for every domain; on
//! the clone path (via [`SnapshotOnly`]) we instead record the honest
//! non-zero count and pin its determinism.

use alloc_counter::{assert_no_alloc, count_allocs};
use pnmcs::games::{NeedleLadder, SameGame, Sudoku, SumGame, TspGame, TspInstance};
use pnmcs::morpion::{cross_board, Variant};
use pnmcs::search::{Game, PlayoutScratch, Rng, SearchCtx, SnapshotOnly};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// Replays the same seeded playout `rounds` times on the restoring
/// scratch path (so every round starts from the identical position and
/// consumes the identical RNG stream), asserting rounds after the first
/// allocate nothing.
fn assert_scratch_playout_alloc_free<G: Game>(label: &str, game: &mut G, seed: u64) {
    assert!(game.supports_undo(), "{label}: scratch path requires undo");
    let mut scratch = PlayoutScratch::new();
    let mut seq = Vec::new();
    let mut ctx = SearchCtx::unbounded();

    // Warm-up: grows the move/undo/seq buffers and any domain
    // thread-local scratch to this playout's peak size. Two rounds so
    // the second confirms the first left the position fully restored.
    for _ in 0..2 {
        seq.clear();
        let mut rng = Rng::seeded(seed);
        scratch.run_undo(game, &mut rng, None, &mut seq, &mut ctx);
    }
    let warm_len = seq.len();

    // The measured replay: byte-for-byte the same playout, now required
    // to stay off the allocator entirely.
    assert_no_alloc(label, || {
        seq.clear();
        let mut rng = Rng::seeded(seed);
        scratch.run_undo(game, &mut rng, None, &mut seq, &mut ctx);
    });
    assert_eq!(seq.len(), warm_len, "{label}: replay diverged from warm-up");
}

#[test]
fn morpion_scratch_playout_is_allocation_free() {
    assert_scratch_playout_alloc_free("morpion-5d", &mut cross_board(Variant::Disjoint, 3), 2009);
    assert_scratch_playout_alloc_free("morpion-5t", &mut cross_board(Variant::Touching, 3), 2009);
}

#[test]
fn samegame_scratch_playout_is_allocation_free() {
    assert_scratch_playout_alloc_free("samegame", &mut SameGame::random(8, 8, 3, 7), 2009);
}

#[test]
fn tsp_scratch_playout_is_allocation_free() {
    let instance = TspInstance::random(24, 11);
    // Both branchings: the full successor list and the k-nearest
    // neighbourhood pruning (which uses its own thread-local scratch).
    assert_scratch_playout_alloc_free("tsp-full", &mut TspGame::new(instance.clone(), None), 2009);
    assert_scratch_playout_alloc_free("tsp-k8", &mut TspGame::new(instance, Some(8)), 2009);
}

#[test]
fn sudoku_scratch_playout_is_allocation_free() {
    assert_scratch_playout_alloc_free("sudoku", &mut Sudoku::puzzle(3, 40, 5), 2009);
}

#[test]
fn toy_scratch_playouts_are_allocation_free() {
    assert_scratch_playout_alloc_free("sumgame", &mut SumGame::random(12, 4, 3), 2009);
    assert_scratch_playout_alloc_free("needle-ladder", &mut NeedleLadder::new(10), 2009);
}

/// The clone path allocates by design (one boxed snapshot per move via
/// the default `apply`). The sanitizer cannot demand zero there; it
/// instead records the honest count and pins that it is deterministic —
/// a regression doubling snapshot traffic fails this test.
#[test]
fn clone_path_allocation_count_is_honest_and_deterministic() {
    let run_once = || {
        let mut game = SnapshotOnly(SumGame::random(12, 4, 3));
        assert!(!game.supports_undo(), "the adapter must hide the fast path");
        let mut scratch = PlayoutScratch::new();
        let mut seq = Vec::new();
        let mut ctx = SearchCtx::unbounded();
        let mut rng = Rng::seeded(2009);
        let (events, score) =
            count_allocs(|| scratch.run_undo(&mut game, &mut rng, None, &mut seq, &mut ctx));
        (events, score, seq.len())
    };
    let (events_a, score_a, len_a) = run_once();
    let (events_b, score_b, len_b) = run_once();
    assert!(
        events_a > 0,
        "the snapshot fallback must be visible to the counter"
    );
    assert_eq!(
        events_a, events_b,
        "clone-path traffic must be deterministic"
    );
    assert_eq!((score_a, len_a), (score_b, len_b));
}
