//! Property tests of the observability layer (`nmcs_core::metrics`):
//!
//! * histogram merging is associative and order-independent, so
//!   per-worker histograms can be combined in any order;
//! * registry snapshots are monotone across polls (counters never run
//!   backwards);
//! * the dead-letter queue is bounded and never evicts its newest
//!   entry;
//! * enabling or disabling metrics changes **no** search result on any
//!   backend — the instrumentation provably never touches a search RNG;
//! * the engine inspector reports non-zero pool counters, per-backend
//!   percentiles, the queue-wait/run-time split, and dead letters for a
//!   panicked job, and the whole snapshot round-trips through JSON;
//! * instrumented sequential UCT stays within noise of a
//!   registry-disabled run (the cheap-overhead guard).
//!
//! The enable flag is process-global, so the tests that flip it
//! serialise on one lock and always restore the enabled state.

use pnmcs::games::SameGame;
use pnmcs::search::metrics as m;
use pnmcs::search::{SearchSpec, Searcher};
use proptest::prelude::*;
use std::sync::Mutex;

mod common;
use common::test_workers;

/// Serialises the tests that flip the process-global enable flag.
static FLAG_LOCK: Mutex<()> = Mutex::new(());

/// Restores `set_metrics_enabled(true)` even if the test panics.
struct EnabledGuard;
impl Drop for EnabledGuard {
    fn drop(&mut self) {
        m::set_metrics_enabled(true);
    }
}

fn hist_of(samples: &[u64]) -> m::Histogram {
    let h = m::Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn merged(parts: &[&m::Histogram]) -> m::Histogram {
    let out = m::Histogram::new();
    for p in parts {
        out.merge_from(p);
    }
    out
}

fn assert_hist_eq(a: &m::Histogram, b: &m::Histogram, label: &str) {
    assert_eq!(a.bucket_counts(), b.bucket_counts(), "{label}: buckets");
    assert_eq!(a.snapshot(), b.snapshot(), "{label}: snapshot");
}

/// Deterministic strategies of the unified API, smallest-sensible
/// shapes (the `budget_props` list, plus the `leaf_batch_dynamic`
/// tree-parallel form this PR adds). Tree-parallel joins at one worker,
/// its deterministic form.
fn all_specs(seed: u64) -> Vec<SearchSpec> {
    vec![
        SearchSpec::nested(1).seed(seed).build(),
        SearchSpec::nrpa(1).seed(seed).build(),
        SearchSpec::uct().seed(seed).build(),
        SearchSpec::flat_mc(128).seed(seed).build(),
        SearchSpec::iterated_sampling(2).seed(seed).build(),
        SearchSpec::beam(3, 1).seed(seed).build(),
        SearchSpec::sample().seed(seed).build(),
        SearchSpec::leaf(1, 4, 2).seed(seed).build(),
        SearchSpec::root_parallel(2, 2).seed(seed).build(),
        SearchSpec::tree_parallel(1).seed(seed).build(),
        SearchSpec::tree_parallel(1)
            .leaf_batch(4)
            .leaf_batch_dynamic(true)
            .seed(seed)
            .build(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn histogram_merge_is_associative_and_order_independent(
        xs in proptest::collection::vec(0u64..u64::MAX / 2, 0..40),
        ys in proptest::collection::vec(0u64..u64::MAX / 2, 0..40),
        zs in proptest::collection::vec(0u64..u64::MAX / 2, 0..40),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        // ((a + b) + c) == (a + (b + c))
        let left = merged(&[&merged(&[&a, &b]), &c]);
        let right = merged(&[&a, &merged(&[&b, &c])]);
        assert_hist_eq(&left, &right, "associativity");

        // Any merge order gives the same histogram.
        let abc = merged(&[&a, &b, &c]);
        let cba = merged(&[&c, &b, &a]);
        let bac = merged(&[&b, &a, &c]);
        assert_hist_eq(&abc, &cba, "order abc/cba");
        assert_hist_eq(&abc, &bac, "order abc/bac");

        // And equals recording every sample into one histogram.
        let mut all = xs.to_vec();
        all.extend(&ys);
        all.extend(&zs);
        assert_hist_eq(&abc, &hist_of(&all), "merge vs direct");
        prop_assert_eq!(abc.count(), all.len() as u64);
    }

    #[test]
    fn search_snapshot_counters_are_monotone_across_polls(seed in 0u64..1000) {
        // Hold the flag lock: a concurrently running flag-flip test
        // could otherwise disable recording mid-poll.
        let _serial = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let game = SameGame::random(4, 4, 3, seed);
        let mut prev = m::search_metrics().snapshot();
        for i in 0..3 {
            SearchSpec::sample().seed(seed.wrapping_add(i)).run(&game);
            let next = m::search_metrics().snapshot();
            // Counters only move forward (other test threads may bump
            // them concurrently — that still keeps them monotone).
            prop_assert!(next.searches > prev.searches);
            prop_assert!(next.playouts >= prev.playouts);
            prop_assert!(next.playout_moves >= prev.playout_moves);
            prop_assert!(next.deadline_trips >= prev.deadline_trips);
            prop_assert!(next.playout_trips >= prev.playout_trips);
            prop_assert!(next.node_trips >= prev.node_trips);
            prop_assert!(next.cancellations >= prev.cancellations);
            for b in &prev.backends {
                let again = next.backends.iter().find(|n| n.tag == b.tag);
                prop_assert!(again.is_some_and(|n| n.hits >= b.hits));
            }
            prev = next;
        }
    }

    #[test]
    fn dead_letter_queue_is_bounded_and_keeps_the_newest(
        cap in 1usize..5,
        n in 0usize..12,
    ) {
        let dlq = m::DeadLetterQueue::new(cap);
        for i in 0..n {
            dlq.push(m::DeadLetter {
                job: i as u64,
                reason: "panicked".to_string(),
                ..Default::default()
            });
        }
        let letters = dlq.snapshot();
        prop_assert!(letters.len() <= cap);
        prop_assert_eq!(letters.len(), n.min(cap));
        prop_assert_eq!(dlq.dropped(), n.saturating_sub(cap) as u64);
        if n > 0 {
            // The newest entry always survives eviction...
            prop_assert_eq!(letters.last().unwrap().job, n as u64 - 1);
            // ...and the record is the most recent `min(n, cap)`,
            // oldest first.
            let oldest = n - n.min(cap);
            for (k, l) in letters.iter().enumerate() {
                prop_assert_eq!(l.job, (oldest + k) as u64);
            }
        }
    }

    #[test]
    fn metrics_flag_changes_no_search_result_on_any_backend(seed in 0u64..500) {
        let _serial = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = EnabledGuard;
        let game = SameGame::random(4, 4, 3, seed);
        for spec in all_specs(seed) {
            let label = spec.algorithm.label();
            m::set_metrics_enabled(true);
            let on = spec.search(&game, None);
            m::set_metrics_enabled(false);
            let off = spec.search(&game, None);
            prop_assert_eq!(
                (on.score, &on.sequence, on.stats.playouts),
                (off.score, &off.sequence, off.stats.playouts),
                "{}: metrics flag must not perturb the search", label
            );
        }
    }
}

#[test]
fn leaf_batch_dynamic_is_bit_identical_and_serde_back_compatible() {
    let game = SameGame::random(5, 5, 3, 17);
    let fixed = SearchSpec::tree_parallel(1).leaf_batch(4).seed(17).build();
    let dynamic = SearchSpec::tree_parallel(1)
        .leaf_batch(4)
        .leaf_batch_dynamic(true)
        .seed(17)
        .build();

    // The dynamic gate only moves *where* already-seeded slab slots
    // run, so the deterministic single-worker form is bit-identical to
    // the static slab path — but the spec identity records the
    // difference.
    let a = fixed.search(&game, None);
    let b = dynamic.search(&game, None);
    assert_eq!((a.score, &a.sequence), (b.score, &b.sequence));
    assert_ne!(fixed.algorithm.tag(), dynamic.algorithm.tag());

    // At the suite's worker count the backend is schedule-dependent
    // either way; the gate must still produce a valid, replayable
    // search.
    let wide = SearchSpec::tree_parallel(test_workers())
        .leaf_batch(4)
        .leaf_batch_dynamic(true)
        .seed(17)
        .build()
        .search(&game, None);
    {
        use pnmcs::search::Game;
        let mut replay = game;
        for mv in &wide.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), wide.score, "dynamic-gate report replays");
    }

    // Back-compat: a pre-upgrade spec JSON (no `leaf_batch_dynamic`
    // field) still parses, defaults the gate off, and keeps the same
    // identity tag.
    let json = serde_json::to_string(&fixed).expect("specs serialise");
    assert!(json.contains("\"leaf_batch_dynamic\":false"));
    let legacy = json.replace(",\"leaf_batch_dynamic\":false", "");
    assert_ne!(legacy, json, "the field must have been stripped");
    let parsed: SearchSpec = serde_json::from_str(&legacy).expect("legacy spec parses");
    assert_eq!(parsed.algorithm.tag(), fixed.algorithm.tag());
}

#[test]
fn engine_inspector_reports_all_three_layers_and_round_trips() {
    // Hold the flag lock: the flag-flip tests could otherwise disable
    // recording while the engine workload runs.
    let _serial = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Drive the shared executor pool through a batched leaf search so
    // the pool section has non-zero counters no matter which test ran
    // first.
    let game = SameGame::random(5, 5, 3, 23);
    SearchSpec::leaf(1, 4, 2).seed(23).run(&game);

    // The bench SLO workload: mixed jobs + a guaranteed budget trip +
    // a guaranteed panic, snapshotted through `Engine::inspector`.
    let snapshot = nmcs_bench::slo_snapshot(4, 23);

    // Pool layer: the batch above is visible, and its wakeups with it.
    assert!(snapshot.pool.workers >= 1);
    assert!(snapshot.pool.batches >= 1, "leaf batches must be counted");
    assert!(snapshot.pool.batch_slots >= snapshot.pool.batches);
    assert!(snapshot.pool.wakeups >= 1);

    // Search layer: per-backend wall-time percentiles exist and are
    // internally consistent.
    assert!(snapshot.search.searches >= 1);
    assert!(!snapshot.search.backends.is_empty());
    for b in &snapshot.search.backends {
        assert!(b.hits >= 1, "{}: empty backend slot", b.label);
        assert_eq!(b.hits, b.hist.count, "{}", b.label);
        assert!(b.hist.p50_ns <= b.hist.p95_ns, "{}", b.label);
        assert!(b.hist.p95_ns <= b.hist.p99_ns, "{}", b.label);
        assert!(b.hist.max_ns >= b.hist.min_ns, "{}", b.label);
    }

    // Engine layer: queue-wait/run-time split and the dead letters of
    // the injected panic (and the 1ms-deadline trip).
    let engine = snapshot.engine.as_ref().expect("engine section");
    assert!(engine.executed_tasks >= 1);
    assert!(engine.queue_wait.count >= 1, "queue waits recorded");
    assert!(engine.run_time.count >= 1, "run times recorded");
    assert!(!engine.tenants.is_empty());
    assert!(!engine.domains.is_empty());
    assert!(
        engine.dead_letters.iter().any(|d| d.reason == "panicked"),
        "the injected panic must be a dead letter: {:?}",
        engine.dead_letters
    );
    assert_eq!(engine.failed_jobs, 1);

    // The whole snapshot is JSON-round-trippable, and the text render
    // mentions every layer.
    let json = serde_json::to_string(&snapshot).expect("snapshot serialises");
    let back: m::MetricsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
    assert_eq!(back, snapshot);
    let text = snapshot.render_text();
    for series in ["pool_parks", "search_playouts", "engine_run_time"] {
        assert!(text.contains(series), "render_text missing {series}");
    }
}

#[test]
fn tag_collisions_are_rerouted_not_merged() {
    let tags = m::TagHistograms::new();
    tags.record(7, "alpha", 100);
    // Same tag under a different label: an FNV collision between two
    // names. It must not pollute alpha's histogram.
    tags.record(7, "beta", 9_999);
    tags.record(7, "alpha", 300);
    assert_eq!(tags.collisions(), 1);
    assert_eq!(tags.overflow(), 1, "collisions count as overflow too");
    let snap = tags.snapshot();
    let slot = snap.iter().find(|s| s.tag == 7).expect("slot claimed");
    assert_eq!(slot.label, "alpha", "first claimer keeps the slot");
    assert_eq!(slot.hits, 2);
    assert_eq!(slot.hist.count, 2);
    assert_eq!(slot.hist.max_ns, 300, "colliding sample must not land");
    assert!(!snap.iter().any(|s| s.label == "beta"));
}

#[test]
fn histogram_empty_and_single_sample_snapshots_are_exact() {
    // Count 0: everything is zero, no garbage percentiles.
    let h = m::Histogram::new();
    assert_eq!(h.snapshot(), m::HistogramSnapshot::default());

    // Count 1: every percentile is exactly the one sample (the min/max
    // clamp collapses the bucket-midpoint estimate).
    for sample in [0u64, 1, 2, 1_234, u64::MAX / 3] {
        let h = m::Histogram::new();
        h.record(sample);
        let s = h.snapshot();
        assert_eq!(s.count, 1, "{sample}");
        assert_eq!(s.sum_ns, sample, "{sample}");
        assert_eq!(s.min_ns, sample, "{sample}");
        assert_eq!(s.max_ns, sample, "{sample}");
        assert_eq!(s.p50_ns, sample, "{sample}");
        assert_eq!(s.p95_ns, sample, "{sample}");
        assert_eq!(s.p99_ns, sample, "{sample}");
    }
}

#[test]
fn render_text_escapes_hostile_labels() {
    let hostile = m::TaggedHistogramSnapshot {
        tag: 1,
        label: "evil\"tenant\nname\\\u{7}".to_string(),
        hits: 1,
        hist: m::HistogramSnapshot {
            count: 1,
            ..Default::default()
        },
    };
    let snap = m::MetricsSnapshot {
        engine: Some(m::EngineSnapshot {
            tenants: vec![hostile.clone()],
            domains: vec![hostile.clone()],
            tag_collisions: 3,
            ..Default::default()
        }),
        ..Default::default()
    };
    let mut snap = snap;
    snap.search.backends.push(hostile);
    let text = snap.render_text();

    // The quote, newline, and backslash are escaped and the control
    // character replaced, so every exposition line stays one line with
    // balanced quotes.
    assert!(
        text.contains("evil\\\"tenant\\nname\\\\\u{FFFD}"),
        "escaped label missing:\n{text}"
    );
    assert!(!text.contains("evil\"tenant"), "raw quote survived");
    for line in text.lines() {
        // Count quotes that are *not* escaped: every label value must
        // open and close on the same exposition line.
        let mut unescaped = 0usize;
        let mut pending_escape = false;
        for c in line.chars() {
            match c {
                '\\' => pending_escape = !pending_escape,
                '"' if !pending_escape => unescaped += 1,
                _ => pending_escape = false,
            }
        }
        assert_eq!(unescaped % 2, 0, "unbalanced: {line}");
    }
    // The new collision counters render for both layers.
    assert!(text.contains("search_tag_collisions_total 0"));
    assert!(text.contains("engine_tag_collisions_total 3"));
}

/// The cheap overhead guard: instrumented sequential UCT within noise
/// of a registry-disabled run. Min-of-N wall clock on identical work;
/// the generous factor keeps the guard meaningful without making it
/// flaky on a loaded CI box.
#[test]
fn instrumented_sequential_uct_stays_within_noise() {
    let _serial = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = EnabledGuard;
    let game = SameGame::random(5, 5, 3, 41);
    let spec = SearchSpec::uct().seed(41).build();
    let min_wall = |runs: usize| {
        (0..runs)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let report = spec.search(&game, None);
                assert!(report.stats.playouts > 0);
                t0.elapsed()
            })
            .min()
            .expect("at least one run")
    };
    // Warm-up evens out first-touch costs for whichever side runs first.
    min_wall(1);
    m::set_metrics_enabled(true);
    let on = min_wall(5);
    m::set_metrics_enabled(false);
    let off = min_wall(5);
    assert!(
        on <= off * 3 + std::time::Duration::from_millis(5),
        "instrumented run too slow: on={on:?} off={off:?}"
    );
}
