//! Integration tests of the `nmcs-engine` service layer: determinism
//! (engine results are bit-identical to direct library calls),
//! backpressure, prompt cancellation, ensemble merging, and duplicate
//! diversification.

use pnmcs::engine::{Algorithm, Engine, EngineConfig, JobHandle, JobSpec, JobState, SubmitError};
use pnmcs::games::{SameGame, SumGame, TspGame, TspInstance};
use pnmcs::morpion::{cross_board, standard_5d, Variant};
use pnmcs::parallel::seeds::median_seed;
use pnmcs::search::nrpa::CodedGame;
use pnmcs::search::{
    decode_result, Budget, Interruption, NestedConfig, NrpaConfig, SearchResult, SearchSpec,
};
use std::time::{Duration, Instant};

/// The acceptance-criterion workload: ≥ 32 mixed-game jobs on 4 workers,
/// every result bit-identical (score, decoded sequence, stats) to the
/// equivalent direct single-threaded library call with the same seed.
#[test]
fn thirty_two_mixed_jobs_are_bit_identical_to_direct_calls() {
    let engine = Engine::start(EngineConfig {
        workers: 4,
        queue_capacity: 64,
    })
    .expect("valid engine config");

    // Typed games are kept on the side so each engine result can be
    // decoded and compared against the direct call on the same type.
    let mut morpion_jobs: Vec<(pnmcs::morpion::Board, u64, JobHandle)> = Vec::new();
    let mut samegame_jobs: Vec<(SameGame, u64, JobHandle)> = Vec::new();
    let mut tsp_jobs: Vec<(TspGame, u64, JobHandle)> = Vec::new();
    let mut sum_jobs: Vec<(SumGame, u64, JobHandle)> = Vec::new();

    for i in 0..36u64 {
        let seed = 10_000 + i;
        match i % 4 {
            0 => {
                let g = cross_board(Variant::Disjoint, 2);
                let h = engine
                    .submit(JobSpec::new(
                        format!("m-{i}"),
                        g.clone(),
                        Algorithm::nested(1),
                        seed,
                    ))
                    .unwrap();
                morpion_jobs.push((g, seed, h));
            }
            1 => {
                let g = SameGame::random(6, 6, 3, i);
                let h = engine
                    .submit(JobSpec::new(
                        format!("s-{i}"),
                        g.clone(),
                        Algorithm::nested(1),
                        seed,
                    ))
                    .unwrap();
                samegame_jobs.push((g, seed, h));
            }
            2 => {
                let g = TspGame::new(TspInstance::random(9, i), None);
                let h = engine
                    .submit(JobSpec::new(
                        format!("t-{i}"),
                        g.clone(),
                        Algorithm::nested(1),
                        seed,
                    ))
                    .unwrap();
                tsp_jobs.push((g, seed, h));
            }
            _ => {
                let g = SumGame::random(6, 4, i);
                let h = engine
                    .submit(JobSpec::new(
                        format!("u-{i}"),
                        g.clone(),
                        Algorithm::nested(2),
                        seed,
                    ))
                    .unwrap();
                sum_jobs.push((g, seed, h));
            }
        }
    }

    fn check<G>(game: &G, seed: u64, level: u32, handle: JobHandle)
    where
        G: CodedGame + Send + Sync,
        G::Move: Send + Sync,
    {
        let out = handle.join();
        assert_eq!(out.state, JobState::Completed);
        let replica = out.best.expect("completed job has a result");
        assert_eq!(replica.seed_used, seed, "single-replica job keeps its seed");
        let direct: SearchResult<G::Move> =
            SearchSpec::nested(level).seed(seed).run(game).into_result();
        let decoded = decode_result(game, &replica.result);
        assert_eq!(decoded, direct, "engine result must be bit-identical");
    }

    let total = morpion_jobs.len() + samegame_jobs.len() + tsp_jobs.len() + sum_jobs.len();
    assert!(
        total >= 32,
        "acceptance criterion needs at least 32 jobs, got {total}"
    );

    for (g, seed, h) in morpion_jobs {
        check(&g, seed, 1, h);
    }
    for (g, seed, h) in samegame_jobs {
        check(&g, seed, 1, h);
    }
    for (g, seed, h) in tsp_jobs {
        check(&g, seed, 1, h);
    }
    for (g, seed, h) in sum_jobs {
        check(&g, seed, 2, h);
    }

    let stats = engine.stats();
    assert_eq!(stats.completed_jobs, 36);
    assert_eq!(stats.cancelled_jobs, 0);
    assert_eq!(stats.in_flight_replicas, 0);
    engine.shutdown();
}

#[test]
fn nrpa_jobs_match_direct_nrpa_calls() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 16,
    })
    .expect("valid engine config");
    let mut jobs = Vec::new();
    for i in 0..4u64 {
        let g = SameGame::random(5, 5, 3, i);
        let cfg = NrpaConfig {
            iterations: 10,
            alpha: 1.0,
        };
        let h = engine
            .submit(JobSpec::new(
                format!("nrpa-{i}"),
                g.clone(),
                Algorithm::Nrpa {
                    level: 2,
                    config: cfg.clone(),
                },
                777 + i,
            ))
            .unwrap();
        jobs.push((g, cfg, 777 + i, h));
    }
    for (g, cfg, seed, h) in jobs {
        let out = h.join();
        let replica = out.best.expect("completed");
        let direct = SearchSpec::nrpa_with(2, cfg.clone())
            .seed(seed)
            .run(&g)
            .into_result();
        let decoded = decode_result(&g, &replica.result);
        assert_eq!(
            decoded, direct,
            "NRPA through the erasure must match (true move codes)"
        );
    }
    engine.shutdown();
}

#[test]
fn ensemble_replicas_use_parallel_seed_derivation_and_merge_best() {
    let engine = Engine::start(EngineConfig {
        workers: 4,
        queue_capacity: 16,
    })
    .expect("valid engine config");
    let g = SameGame::random(6, 6, 3, 5);
    let seed = 31_337;
    let h = engine
        .submit(JobSpec::new("ensemble", g.clone(), Algorithm::nested(1), seed).with_replicas(4))
        .unwrap();
    let out = h.join();
    assert_eq!(out.state, JobState::Completed);

    let mut best_direct: Option<i64> = None;
    for (r, replica) in out.replicas.iter().enumerate() {
        let replica = replica.as_ref().expect("all replicas finished");
        let expect_seed = median_seed(seed, 0, r);
        assert_eq!(
            replica.seed_used, expect_seed,
            "replica {r} seed derivation"
        );
        let direct = SearchSpec::nested(1)
            .seed(expect_seed)
            .run(&g)
            .into_result();
        assert_eq!(
            decode_result(&g, &replica.result),
            direct,
            "replica {r} must match its direct call"
        );
        best_direct = Some(best_direct.map_or(direct.score, |b| b.max(direct.score)));
    }
    assert_eq!(
        out.score(),
        best_direct,
        "merge must pick the max replica score"
    );
    engine.shutdown();
}

#[test]
fn cancellation_is_prompt_even_mid_search() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 4,
    })
    .expect("valid engine config");
    // A level-2 search on the full cross takes minutes uncancelled.
    let h = engine
        .submit(JobSpec::new(
            "heavy",
            standard_5d(),
            Algorithm::nested(2),
            1,
        ))
        .unwrap();
    // Deadline-poll rather than a fixed sleep: sibling tests saturate
    // the cores, so the lone worker may take a while to dequeue.
    let deadline = Instant::now() + Duration::from_secs(10);
    while h.poll_progress().state != JobState::Running {
        assert!(Instant::now() < deadline, "heavy job never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Let the search get properly underway before interrupting it.
    std::thread::sleep(Duration::from_millis(50));

    let cancelled_at = Instant::now();
    h.cancel();
    let out = h.join();
    let latency = cancelled_at.elapsed();
    assert_eq!(out.state, JobState::Cancelled);
    assert!(
        out.best.is_none(),
        "truncated search result must be discarded"
    );
    assert!(
        latency < Duration::from_secs(2),
        "cancellation took {latency:?}, expected milliseconds"
    );
    engine.shutdown();
}

#[test]
fn backpressure_bounds_queued_memory_and_try_submit_fails_fast() {
    let capacity = 3;
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: capacity,
    })
    .expect("valid engine config");

    // Occupy the only worker with a search we control.
    let blocker = engine
        .submit(JobSpec::new(
            "blocker",
            standard_5d(),
            Algorithm::nested(2),
            2,
        ))
        .unwrap();
    // Give the worker time to take the blocker off the queue.
    let deadline = Instant::now() + Duration::from_secs(5);
    while blocker.poll_progress().state == JobState::Queued {
        assert!(Instant::now() < deadline, "blocker never started");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Fill the queue to capacity with cheap jobs…
    let mut queued = Vec::new();
    for i in 0..capacity {
        queued.push(
            engine
                .try_submit(JobSpec::new(
                    format!("q-{i}"),
                    SumGame::random(4, 3, i as u64),
                    Algorithm::nested(1),
                    50 + i as u64,
                ))
                .expect("queue has room"),
        );
    }
    // …then the next fast-path submission must be refused.
    let (err, returned_spec) = engine
        .try_submit(JobSpec::new(
            "overflow",
            SumGame::random(4, 3, 9),
            Algorithm::nested(1),
            99,
        ))
        .unwrap_err();
    assert_eq!(
        err,
        SubmitError::QueueFull {
            capacity,
            requested: 1
        }
    );
    assert_eq!(
        returned_spec.name, "overflow",
        "rejected spec is handed back"
    );
    assert!(engine.stats().rejected_submissions >= 1);

    // A multi-replica job that cannot fully fit is refused all-or-nothing.
    let (err, _) = engine
        .try_submit(
            JobSpec::new("wide", SumGame::random(4, 3, 10), Algorithm::nested(1), 100)
                .with_replicas(capacity + 1),
        )
        .unwrap_err();
    assert!(matches!(err, SubmitError::QueueFull { .. }));

    // Unblock the worker; everything queued must drain, and the queue
    // depth must never have exceeded its capacity (bounded memory).
    blocker.cancel();
    assert_eq!(blocker.join().state, JobState::Cancelled);
    for h in queued {
        assert_eq!(h.join().state, JobState::Completed);
    }
    let stats = engine.stats();
    assert!(
        stats.peak_queue_depth <= capacity,
        "peak queue depth {} exceeded capacity {capacity}",
        stats.peak_queue_depth
    );
    engine.shutdown();
}

#[test]
fn blocking_submit_applies_backpressure_then_succeeds() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 1,
    })
    .expect("valid engine config");
    let blocker = engine
        .submit(JobSpec::new(
            "blocker",
            standard_5d(),
            Algorithm::nested(2),
            3,
        ))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while blocker.poll_progress().state == JobState::Queued {
        assert!(Instant::now() < deadline, "blocker never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Fill the single queue slot.
    let queued = engine
        .submit(JobSpec::new(
            "q",
            SumGame::random(4, 3, 1),
            Algorithm::nested(1),
            4,
        ))
        .unwrap();

    // A blocking submit from another thread must stall until the blocker
    // is cancelled, then complete. Assert the *ordering* (submit cannot
    // return before the cancel that frees the queue slot) rather than
    // wall-clock timing, which is flaky under parallel test load.
    let engine_ref = &engine;
    let cancel_issued = std::sync::atomic::AtomicBool::new(false);
    let (saw_cancel_first, handle_result) = std::thread::scope(|scope| {
        let cancel_issued = &cancel_issued;
        let submitter = scope.spawn(move || {
            let h = engine_ref.submit(JobSpec::new(
                "late",
                SumGame::random(4, 3, 2),
                Algorithm::nested(1),
                5,
            ));
            (cancel_issued.load(std::sync::atomic::Ordering::SeqCst), h)
        });
        std::thread::sleep(Duration::from_millis(60));
        cancel_issued.store(true, std::sync::atomic::Ordering::SeqCst);
        blocker.cancel();
        submitter.join().expect("submitter thread")
    });
    assert!(
        saw_cancel_first,
        "blocking submit returned before the cancel freed a queue slot"
    );
    let late = handle_result.expect("late submission admitted after space freed");
    assert_eq!(queued.join().state, JobState::Completed);
    assert_eq!(late.join().state, JobState::Completed);
    engine.shutdown();
}

#[test]
fn duplicate_in_flight_submissions_are_diversified() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 8,
    })
    .expect("valid engine config");
    // Hold the worker so both duplicates stay queued while planned.
    let blocker = engine
        .submit(JobSpec::new(
            "blocker",
            standard_5d(),
            Algorithm::nested(2),
            6,
        ))
        .unwrap();

    let g = SumGame::random(5, 3, 8);
    let spec = JobSpec::new("dup", g.clone(), Algorithm::nested(1), 12345);
    let first = engine.submit(spec.clone()).unwrap();
    let second = engine.submit(spec).unwrap();

    blocker.cancel();
    let _ = blocker.join();
    let out1 = first.join();
    let out2 = second.join();
    let r1 = out1.best.unwrap();
    let r2 = out2.best.unwrap();
    assert_eq!(
        r1.seed_used, 12345,
        "first submission keeps the canonical seed"
    );
    assert_ne!(
        r2.seed_used, 12345,
        "in-flight duplicate must be diversified"
    );

    // Both results are still reproducible from their recorded seeds.
    for r in [&r1, &r2] {
        let direct = SearchSpec::nested(1)
            .seed(r.seed_used)
            .run(&g)
            .into_result();
        assert_eq!(decode_result(&g, &r.result), direct);
    }
    engine.shutdown();
}

#[test]
fn policy_diversified_ensembles_match_their_recorded_policies() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 8,
    })
    .expect("valid engine config");
    let g = SameGame::random(5, 5, 3, 2);
    let seed = 2_024;
    let h = engine
        .submit(
            JobSpec::new("pdiv", g.clone(), Algorithm::nested(1), seed)
                .with_replicas(2)
                .with_policy_diversification(),
        )
        .unwrap();
    let out = h.join();
    for replica in out.replicas.iter().flatten() {
        let config = NestedConfig {
            memory: replica.memory_policy.expect("NMCS job records its policy"),
            ..NestedConfig::paper()
        };
        let direct = SearchSpec::nested_with(1, config)
            .seed(replica.seed_used)
            .run(&g)
            .into_result();
        assert_eq!(
            decode_result(&g, &replica.result),
            direct,
            "replica {} with {:?}",
            replica.replica,
            replica.memory_policy
        );
    }
    engine.shutdown();
}

#[test]
fn erased_games_expose_true_move_codes_to_the_engine() {
    // Sanity that the erasure used by the engine preserves move codes —
    // the property the NRPA bit-identity test relies on.
    let g = SameGame::random(4, 4, 3, 1);
    let erased = pnmcs::search::DynGame::new(g.clone());
    let mut typed_moves = Vec::new();
    g.legal_moves(&mut typed_moves);
    for (i, mv) in typed_moves.iter().enumerate() {
        assert_eq!(erased.move_code(&i), g.move_code(mv));
    }
}

#[test]
fn spec_jobs_are_bit_identical_to_direct_spec_runs() {
    // The acceptance shape: engine jobs accept a full SearchSpec and
    // stay bit-identical to `spec.run(&game)` with the same seed.
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 8,
    })
    .expect("valid engine config");
    let g = SameGame::random(6, 6, 3, 9);
    let specs = [
        SearchSpec::nested(1).seed(501).build(),
        SearchSpec::uct().seed(502).build(),
        SearchSpec::flat_mc(64).seed(503).build(),
        SearchSpec::iterated_sampling(2).seed(504).build(),
        SearchSpec::beam(4, 1).seed(505).build(),
        SearchSpec::sample().seed(506).build(),
    ];
    let handles: Vec<_> = specs
        .iter()
        .map(|spec| {
            engine
                .submit(JobSpec::from_spec(
                    format!("spec-{}", spec.algorithm.label()),
                    g.clone(),
                    spec.clone(),
                ))
                .unwrap()
        })
        .collect();
    for (spec, h) in specs.iter().zip(handles) {
        let out = h.join();
        assert_eq!(out.state, JobState::Completed, "{}", spec.algorithm.label());
        let replica = out.best.expect("completed job has a result");
        assert_eq!(replica.seed_used, spec.seed);
        let direct = spec.run(&g);
        assert_eq!(
            decode_result(&g, &replica.result),
            direct.result(),
            "{} through the engine must equal the direct spec run",
            spec.algorithm.label()
        );
        assert!(replica.interrupted.is_none());
    }
    engine.shutdown();
}

#[test]
fn budgeted_jobs_stop_early_and_keep_best_so_far() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: 4,
    })
    .expect("valid engine config");
    // A level-3 search on the standard cross would take hours; a playout
    // budget turns it into a bounded job that still reports a result.
    let spec = SearchSpec::nested(3).seed(77).max_playouts(2_000).build();
    let h = engine
        .submit(JobSpec::from_spec("budgeted", standard_5d(), spec))
        .unwrap();
    let out = h.join();
    assert_eq!(out.state, JobState::Completed);
    let replica = out.best.expect("budget interruption keeps the result");
    assert_eq!(replica.interrupted, Some(Interruption::PlayoutBudget));
    assert_eq!(
        replica.seed_used, 77,
        "budgeted single-replica job keeps its seed"
    );
    // The best-so-far sequence replays to the reported score.
    let decoded = decode_result(&standard_5d(), &replica.result);
    let mut replay = standard_5d();
    for mv in &decoded.sequence {
        replay.play(mv);
    }
    assert_eq!(replay.score(), decoded.score);
    let _ = Budget::none();
    engine.shutdown();
}

use pnmcs::search::Game;
