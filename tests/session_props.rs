//! Property tests for the PR-10 session plumbing's two compatibility
//! contracts:
//!
//! 1. **Serde back-compat** — `tree_reuse: false` is the wire default:
//!    legacy JSON rows (persisted before the knob existed, so carrying
//!    no `tree_reuse` field) deserialise to exactly the spec the
//!    builder produces today, and running either spec is bit-identical
//!    (score, sequence, counters) on every backend. Stripping the field
//!    from a *warm* spec must conversely turn the knob off — legacy
//!    rows can never accidentally resurrect as warm sessions.
//!
//! 2. **`state_hash` round-trip** — on every real domain, the hash a
//!    session keys its transposition table with survives the undo
//!    journal: `apply` then `undo` restores the pre-apply hash exactly,
//!    and the apply-path hash equals the play-path hash for the same
//!    move. Without this, a warm tree re-rooted after an undo-backed
//!    search would look up poisoned entries.

use pnmcs::games::{NeedleLadder, SameGame, SumGame, TspGame, TspInstance};
use pnmcs::morpion::{cross_board, Variant};
use pnmcs::search::{DynGame, Game, Rng, SearchReport, SearchSpec};
use proptest::prelude::*;
use serde::{Deserialize, Serialize, Value};

/// Removes every `tree_reuse` field from a JSON tree, reproducing the
/// exact shape pre-knob persisted rows have on disk.
fn strip_tree_reuse(v: &Value) -> Value {
    match v {
        Value::Array(items) => Value::Array(items.iter().map(strip_tree_reuse).collect()),
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "tree_reuse")
                .map(|(k, field)| (k.clone(), strip_tree_reuse(field)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// One spec per backend, parallel ones at width 1 so a run is
/// bit-reproducible and the legacy/current comparison cannot flake.
fn backends(seed: u64) -> Vec<SearchSpec> {
    vec![
        SearchSpec::sample().seed(seed).build(),
        SearchSpec::nested(1).seed(seed).build(),
        SearchSpec::nrpa(1).seed(seed).build(),
        SearchSpec::flat_mc(16).seed(seed).build(),
        SearchSpec::iterated_sampling(8).seed(seed).build(),
        SearchSpec::beam(2, 4).seed(seed).build(),
        SearchSpec::simulated_annealing().seed(seed).build(),
        SearchSpec::uct().seed(seed).max_playouts(64).build(),
        SearchSpec::leaf(1, 2, 1).seed(seed).build(),
        SearchSpec::root_parallel(2, 1).seed(seed).build(),
        SearchSpec::tree_parallel(1)
            .seed(seed)
            .max_playouts(64)
            .build(),
    ]
}

/// The observable outcome of a run: everything a persisted report
/// records except wall-clock time.
fn fingerprint(spec: &SearchSpec, game: &SumGame) -> (i64, Vec<u8>, u64, u64, bool) {
    let r: SearchReport<u8> = spec.run(game);
    (
        r.score,
        r.sequence,
        r.stats.playouts,
        r.stats.work_units,
        r.interrupted.is_some(),
    )
}

/// Drives a random walk over `game`, checking at every position that
/// the undo journal restores `state_hash` exactly and that the
/// apply-path and play-path hashes agree. Plain asserts (not
/// `prop_assert`) so the helper stays generic over `G`.
fn check_hash_walk<G: Game>(mut game: G, seed: u64, cap: usize) {
    let mut rng = Rng::seeded(seed);
    let mut moves = Vec::new();
    for _ in 0..cap {
        moves.clear();
        game.legal_moves(&mut moves);
        if moves.is_empty() {
            break;
        }
        let mv = &moves[rng.below(moves.len())];
        let before = game.state_hash();
        let token = game.apply(mv);
        let after = game.state_hash();
        game.undo(token);
        assert_eq!(
            game.state_hash(),
            before,
            "undo must restore the pre-apply hash (move {})",
            game.moves_played()
        );
        game.play(mv);
        assert_eq!(
            game.state_hash(),
            after,
            "play and apply must hash the same position identically (move {})",
            game.moves_played()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // -- contract 1: legacy JSON ≡ tree_reuse: false ------------------

    #[test]
    fn legacy_json_without_the_knob_is_bit_identical_on_every_backend(
        seed in 0u64..500,
    ) {
        let game = SumGame::random(4, 3, seed);
        for spec in backends(seed) {
            let legacy = strip_tree_reuse(&spec.to_value());
            let revived = SearchSpec::from_value(&legacy)
                .expect("legacy rows must keep deserialising");
            // The knobless wire form IS the reuse-off spec...
            prop_assert_eq!(&revived, &spec, "legacy JSON must mean reuse-off");
            // ...and runs exactly as the pre-PR backend did.
            prop_assert_eq!(
                fingerprint(&revived, &game),
                fingerprint(&spec, &game),
                "legacy and current specs must run bit-identically: {:?}",
                spec.algorithm.label()
            );
        }
    }

    #[test]
    fn serialisation_always_records_the_knob_on_tree_backends(
        seed in 0u64..500, reuse_bit in 0u8..2,
    ) {
        let reuse = reuse_bit == 1;
        for spec in [
            SearchSpec::uct().tree_reuse(reuse).seed(seed).build(),
            SearchSpec::tree_parallel(1).tree_reuse(reuse).seed(seed).build(),
        ] {
            let json = serde_json::to_string(&spec).expect("specs serialise");
            prop_assert!(
                json.contains("\"tree_reuse\""),
                "new rows must be self-describing: {json}"
            );
            let round: SearchSpec = serde_json::from_str(&json).expect("round-trips");
            prop_assert_eq!(round, spec);
        }
    }

    #[test]
    fn stripping_a_warm_spec_turns_the_knob_off(seed in 0u64..500) {
        for warm in [
            SearchSpec::uct().tree_reuse(true).seed(seed).build(),
            SearchSpec::tree_parallel(1).tree_reuse(true).seed(seed).build(),
        ] {
            let cold = SearchSpec::from_value(&strip_tree_reuse(&warm.to_value()))
                .expect("stripped specs deserialise");
            // The knob must survive the wire, and warm/cold specs must
            // never share a dedup tag.
            prop_assert_ne!(&cold, &warm);
            prop_assert_ne!(cold.algorithm.tag(), warm.algorithm.tag());
        }
    }

    // -- contract 2: state_hash survives apply/undo -------------------

    #[test]
    fn state_hash_round_trips_on_samegame(seed in 0u64..1000) {
        check_hash_walk(SameGame::random(5, 5, 3, seed), seed, 64);
    }

    #[test]
    fn state_hash_round_trips_on_morpion(seed in 0u64..1000) {
        check_hash_walk(cross_board(Variant::Disjoint, 3), seed, 48);
    }

    #[test]
    fn state_hash_round_trips_on_tsp(seed in 0u64..1000) {
        check_hash_walk(TspGame::new(TspInstance::random(7, seed), None), seed, 16);
    }

    #[test]
    fn state_hash_round_trips_on_toy_games(seed in 0u64..1000) {
        check_hash_walk(SumGame::random(5, 4, seed), seed, 16);
        check_hash_walk(NeedleLadder::new(6), seed, 16);
    }

    #[test]
    fn state_hash_round_trips_through_erasure(seed in 0u64..1000) {
        // The erased wrapper must preserve the inner game's hash
        // discipline — sessions opened over the HTTP surface only ever
        // see a `DynGame`.
        check_hash_walk(DynGame::new(SameGame::random(5, 5, 3, seed)), seed, 48);
        check_hash_walk(DynGame::new(SumGame::random(5, 4, seed)), seed, 16);
    }
}
