//! Property tests of the persistent executor pool
//! (`nmcs_core::exec::pool::ExecutorPool`) — the concurrency claims the
//! pool-backed executors rest on:
//!
//! * every batch drains and the pool joins cleanly on drop, under a
//!   watchdog so a hang fails the test instead of wedging the suite;
//! * a panicking task surfaces on the submitter without poisoning the
//!   pool — later submissions (including from other threads) run
//!   normally;
//! * budget- and cancel-interrupted runs of the pool-backed backends
//!   return promptly with a best-so-far line that replays to its score.
//!
//! Worker-count-sensitive assertions honour `NMCS_TEST_WORKERS` so CI
//! exercises them at both 1 and 4 workers (see `.github/workflows`).

mod common;

use common::test_workers;
use pnmcs::games::SameGame;
use pnmcs::search::exec::pool::ExecutorPool;
use pnmcs::search::{Budget, CancelToken, Game, Interruption, SearchReport, SearchSpec};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs `f` on a helper thread and fails loudly if it does not finish
/// within `timeout` — the watchdog that turns a pool hang (lost wakeup,
/// missed shutdown, deadlocked batch) into a test failure.
fn with_watchdog<F>(label: &str, timeout: Duration, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(timeout) {
        Ok(()) => worker.join().expect("watchdogged body panicked"),
        Err(_) => panic!("{label}: pool hung past {timeout:?}"),
    }
}

fn assert_replays<G: Game>(game: &G, report: &SearchReport<G::Move>, label: &str) {
    let mut replay = game.clone();
    for mv in &report.sequence {
        replay.play(mv);
    }
    assert_eq!(
        replay.score(),
        report.score,
        "{label}: interrupted best-so-far must replay to its score"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Drop joins every worker with all submitted batches fully drained,
    /// for arbitrary worker counts, batch shapes, and batch counts.
    #[test]
    fn pool_drains_and_joins_on_drop(
        workers in 0usize..5,
        slots in 1usize..9,
        batches in 1usize..6,
    ) {
        with_watchdog("drain-on-drop", Duration::from_secs(30), move || {
            let pool = ExecutorPool::new(workers);
            let ran = Arc::new(AtomicUsize::new(0));
            for _ in 0..batches {
                let ran = ran.clone();
                pool.run_batch(slots, &|_| {
                    // A sliver of real work so slots interleave.
                    std::hint::black_box((0..100).sum::<u64>());
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            drop(pool);
            assert_eq!(ran.load(Ordering::Relaxed), slots * batches);
        });
    }

    /// A panicking slot surfaces on the submitter, and the pool keeps
    /// serving: the same pool then runs clean batches — sequentially and
    /// from several submitting threads at once — to completion.
    #[test]
    fn panicking_task_does_not_poison_later_submissions(
        workers in 1usize..5,
        bad_slot in 0usize..6,
    ) {
        with_watchdog("panic-containment", Duration::from_secs(30), move || {
            let pool = Arc::new(ExecutorPool::new(workers));
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                pool.run_batch(6, &|slot| {
                    if slot == bad_slot {
                        panic!("injected slot failure");
                    }
                });
            }));
            assert!(outcome.is_err(), "the injected panic must surface");

            // Sequential follow-up batch.
            let ran = AtomicUsize::new(0);
            pool.run_batch(6, &|_| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(ran.load(Ordering::Relaxed), 6);

            // Concurrent submitters sharing the damaged-then-healed pool.
            let total = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let pool = pool.clone();
                    let total = total.clone();
                    std::thread::spawn(move || {
                        pool.run_batch(4, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("submitter thread");
            }
            assert_eq!(total.load(Ordering::Relaxed), 12);
        });
    }

    /// Budget-interrupted pool-backed runs return promptly and their
    /// best-so-far line replays to the reported score, at the CI worker
    /// count, across every pool-backed backend.
    #[test]
    fn budget_cancelled_pool_runs_return_promptly_with_replayable_best(seed in 0u64..500) {
        let workers = test_workers();
        let game = SameGame::random(7, 7, 3, seed);
        let specs = [
            SearchSpec::leaf(1, 4, workers).seed(seed).build(),
            SearchSpec::root_parallel(2, workers).seed(seed).build(),
            SearchSpec::tree_parallel(workers).seed(seed).build(),
        ];
        for spec in specs {
            let label = spec.algorithm.label();

            // (a) a playout budget trips mid-run.
            let mut budgeted = spec.clone();
            budgeted.budget = Budget::none().with_max_playouts(30);
            let t0 = Instant::now();
            let report = budgeted.run(&game);
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "{label}: budgeted run took {:?}",
                t0.elapsed()
            );
            assert_replays(&game, &report, label);

            // (b) a pre-cancelled token stops it before real work.
            let token = CancelToken::new();
            token.cancel();
            let t0 = Instant::now();
            let report = spec.run_cancellable(&game, &token);
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "{label}: pre-cancelled run took {:?}",
                t0.elapsed()
            );
            assert_eq!(report.interrupted, Some(Interruption::Cancelled), "{label}");
            assert_replays(&game, &report, label);
        }
    }
}

/// Mid-flight cancellation from another thread unblocks a pool-backed
/// search promptly — the pool must propagate the shared meter trip to
/// every slot, not just the one that observes the token first.
#[test]
fn mid_flight_cancellation_unblocks_pool_backed_searches() {
    let workers = test_workers();
    let game = SameGame::random(10, 10, 4, 21);
    for spec in [
        SearchSpec::leaf(2, 8, workers).seed(5).build(),
        SearchSpec::tree_parallel_with(
            pnmcs::search::UctConfig {
                iterations: 5_000_000,
                ..Default::default()
            },
            workers,
        )
        .seed(5)
        .build(),
    ] {
        let label = spec.algorithm.label();
        let token = CancelToken::new();
        let (report, latency) = std::thread::scope(|scope| {
            let handle = {
                let token = token.clone();
                let game = &game;
                let spec = &spec;
                scope.spawn(move || spec.run_cancellable(game, &token))
            };
            std::thread::sleep(Duration::from_millis(30));
            let t0 = Instant::now();
            token.cancel();
            let report = handle.join().expect("search thread");
            (report, t0.elapsed())
        });
        assert_eq!(report.interrupted, Some(Interruption::Cancelled), "{label}");
        assert!(
            latency < Duration::from_secs(5),
            "{label}: cancellation latency {latency:?}"
        );
        assert_replays(&game, &report, label);
    }
}

/// The executor pool's stealing machinery is observable: saturating the
/// injector from one submitter with more slots than workers must
/// complete every slot exactly once (the steal counter is allowed to be
/// anything — scheduling decides — but nothing may be lost or doubled).
#[test]
fn oversubscribed_batches_complete_every_slot_exactly_once() {
    with_watchdog("oversubscription", Duration::from_secs(30), || {
        let pool = ExecutorPool::new(2);
        for _ in 0..10 {
            let counts: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
            pool.run_batch(32, &|slot| {
                counts[slot].fetch_add(1, Ordering::Relaxed);
            });
            for (slot, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "slot {slot}");
            }
        }
    });
}

/// A lost park/unpark wakeup must be a test failure, not a 50 ms blip
/// the timeout net quietly absorbs: this pool's park timeout is far
/// beyond the watchdog budget, so the only way the hammering below
/// completes in time is the wakeup-generation handshake doing its job
/// — including under concurrent submitters racing workers toward their
/// parks, and at shutdown.
#[test]
fn wakeup_generation_makes_the_park_timeout_net_redundant() {
    with_watchdog("long-park-timeout hammer", Duration::from_secs(60), || {
        let pool = Arc::new(ExecutorPool::with_park_timeout(3, Duration::from_secs(300)));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                let total = total.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run_batch(4, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("submitter thread");
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 4);
        // Shutdown must wake the parked workers without the net too.
        drop(Arc::try_unwrap(pool).ok().expect("sole owner"));
    });
}

/// Tree-parallel batched-leaf slabs are nested `run_batch` calls from
/// inside an outer batch's workers; the pool must drain them without
/// deadlock even when every background worker is occupied by the outer
/// batch (the submitter helps drain its own slab), at the CI worker
/// count.
#[test]
fn nested_batches_from_busy_workers_cannot_deadlock() {
    with_watchdog("nested batched-leaf run", Duration::from_secs(120), || {
        let workers = test_workers();
        let game = SameGame::random(6, 6, 3, 17);
        let report = SearchSpec::tree_parallel(workers)
            .leaf_batch(4)
            .seed(3)
            .max_playouts(400)
            .build()
            .run(&game);
        assert!(report.stats.playouts > 0);
        let mut replay = game;
        for mv in &report.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), report.score);
    });
}
