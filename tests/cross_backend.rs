//! Cross-backend agreement: the sequential reference, the threaded
//! runtime, the discrete-event simulator, and the unified `SearchSpec`
//! executors must make identical search decisions for identical seeds —
//! the determinism contract that makes the simulated cluster results
//! transferable. (The deprecated `run_threads` shim is exercised on
//! purpose: shim ≡ reference ≡ spec is exactly the contract under test.)
#![allow(deprecated)]

use pnmcs::games::SumGame;
use pnmcs::morpion::{cross_board, Variant};
use pnmcs::parallel::{
    run_threads, run_threads_traced, simulate_trace, trace::run_reference, DispatchPolicy, RunMode,
    ThreadConfig,
};
use pnmcs::search::{SearchSpec, Searcher};
use pnmcs::sim::ClusterSpec;

fn thread_config(level: u32, policy: DispatchPolicy) -> ThreadConfig {
    let mut cfg = ThreadConfig::new(level, policy, 3);
    cfg.n_medians = 6;
    cfg.seed = 4242;
    cfg
}

#[test]
fn threads_match_reference_on_morpion() {
    // Tiny cross: a complete level-2 parallel game in well under a second.
    let board = cross_board(Variant::Disjoint, 2);
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        let cfg = thread_config(2, policy);
        let (t_out, _) = run_threads(&board, &cfg);
        let (r_out, _) = run_reference(&board, 2, cfg.seed, RunMode::FullGame, None);
        assert_eq!(t_out.score, r_out.score, "{policy}");
        assert_eq!(t_out.sequence, r_out.sequence, "{policy}");
        assert_eq!(t_out.total_work, r_out.total_work, "{policy}");
        assert_eq!(t_out.client_jobs, r_out.client_jobs, "{policy}");
    }
}

#[test]
fn unified_spec_matches_reference_and_threads() {
    // The new front door's root-parallel executor joins the agreement
    // set: spec ≡ reference ≡ threads, score/sequence/work/jobs.
    let board = cross_board(Variant::Disjoint, 2);
    for mode in [RunMode::FullGame, RunMode::FirstMove] {
        let mut cfg = thread_config(2, DispatchPolicy::LastMinute);
        cfg.mode = mode;
        let (t_out, _) = run_threads(&board, &cfg);
        let (r_out, _) = run_reference(&board, 2, cfg.seed, mode, None);
        let spec_report = cfg.to_spec().search(&board, None);
        assert_eq!(spec_report.score, r_out.score, "{mode:?}");
        assert_eq!(spec_report.sequence, r_out.sequence, "{mode:?}");
        assert_eq!(spec_report.stats.work_units, r_out.total_work, "{mode:?}");
        assert_eq!(spec_report.client_jobs, r_out.client_jobs, "{mode:?}");
        assert_eq!(spec_report.score, t_out.score, "{mode:?}");
        // A different worker count cannot change anything.
        let wide = SearchSpec::root_parallel(2, 7).seed(cfg.seed);
        let wide = if mode == RunMode::FirstMove {
            wide.first_move_only()
        } else {
            wide
        };
        let wide_report = wide.run(&board);
        assert_eq!(wide_report.score, spec_report.score, "{mode:?}");
        assert_eq!(wide_report.sequence, spec_report.sequence, "{mode:?}");
        assert_eq!(wide_report.stats, spec_report.stats, "{mode:?}");
    }
}

#[test]
fn simulator_executes_exactly_the_recorded_jobs() {
    let board = cross_board(Variant::Disjoint, 2);
    let (_, trace) = run_reference(&board, 2, 9, RunMode::FullGame, None);
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        let out = simulate_trace(&trace, &ClusterSpec::homogeneous(5), policy);
        assert_eq!(out.stats.jobs, trace.client_jobs, "{policy}");
        assert_eq!(out.stats.total_work, trace.total_work, "{policy}");
    }
}

#[test]
fn first_move_agreement_at_level_3() {
    let board = cross_board(Variant::Disjoint, 2);
    let mut cfg = thread_config(3, DispatchPolicy::LastMinute);
    cfg.mode = RunMode::FirstMove;
    let (t_out, _) = run_threads(&board, &cfg);
    let (r_out, _) = run_reference(&board, 3, cfg.seed, RunMode::FirstMove, None);
    assert_eq!(t_out.score, r_out.score);
    assert_eq!(t_out.sequence, r_out.sequence);
}

#[test]
fn message_flow_follows_figures_2_through_5() {
    use pnmcs::parallel::{DISPATCHER, ROOT};
    let g = SumGame::random(4, 3, 8);
    let mut cfg = thread_config(2, DispatchPolicy::LastMinute);
    cfg.mode = RunMode::FirstMove;
    let (_, _, log) = run_threads_traced(&g, &cfg);

    // Figure 2 (a): the root opens by sending positions to medians.
    let first_sends: Vec<_> = log.iter().filter(|e| e.from == ROOT).collect();
    assert!(first_sends
        .iter()
        .all(|e| e.tag == "EvalRequest" || e.tag == "Shutdown"));

    // Figure 2 (b): every client request is mediated by the dispatcher.
    let asks = log.iter().filter(|e| e.tag == "WhichClient").count();
    let grants = log.iter().filter(|e| e.tag == "UseClient").count();
    assert_eq!(asks, grants, "every ask is granted exactly once");

    // Figure 4 (c'): Last-Minute clients notify the dispatcher.
    let frees = log.iter().filter(|e| e.tag == "ClientFree").count();
    let client_results = log
        .iter()
        .filter(|e| e.tag == "EvalResult" && e.to != ROOT)
        .count();
    assert_eq!(frees, client_results, "one free notice per client job");
    assert!(log
        .iter()
        .any(|e| e.to == DISPATCHER && e.tag == "ClientFree"));

    // Figure 2 (d): medians report to the root (3 candidate moves).
    let to_root = log
        .iter()
        .filter(|e| e.to == ROOT && e.tag == "EvalResult")
        .count();
    assert_eq!(to_root, 3);
}

#[test]
fn round_robin_run_has_no_free_notices() {
    let g = SumGame::random(4, 3, 8);
    let mut cfg = thread_config(2, DispatchPolicy::RoundRobin);
    cfg.mode = RunMode::FirstMove;
    let (_, _, log) = run_threads_traced(&g, &cfg);
    assert_eq!(
        log.iter().filter(|e| e.tag == "ClientFree").count(),
        0,
        "Figure 2's protocol has no (c') message"
    );
}

#[test]
fn playout_caps_propagate_to_all_backends() {
    let board = cross_board(Variant::Disjoint, 3);
    let mut cfg = thread_config(2, DispatchPolicy::LastMinute);
    cfg.mode = RunMode::FirstMove;
    cfg.playout_cap = Some(4);
    let (t_out, _) = run_threads(&board, &cfg);
    let (r_out, _) = run_reference(&board, 2, cfg.seed, RunMode::FirstMove, Some(4));
    assert_eq!(t_out.score, r_out.score);
    assert_eq!(t_out.total_work, r_out.total_work);
}
