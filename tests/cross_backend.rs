//! Cross-backend agreement: the sequential reference, the threaded
//! runtime, the discrete-event simulator, and the unified `SearchSpec`
//! executors must make identical search decisions for identical seeds —
//! the determinism contract that makes the simulated cluster results
//! transferable. (The deprecated `run_threads` shim is exercised on
//! purpose: shim ≡ reference ≡ spec is exactly the contract under test.)
//!
//! Since the executors moved onto the persistent pool, this suite also
//! pins: pool-backed spec runs ≡ the frozen spawn-per-step baselines
//! per seed; leaf results bit-identical across 1/2/4 workers (the
//! per-slot scratch reuse must not leak state between items); and the
//! tree-parallel UCT contract — single-worker ≡ sequential `uct`,
//! multi-worker always replayable, on all five domains through both the
//! typed and erased (engine) paths.
#![allow(deprecated)]

use pnmcs::engine::{Engine, EngineConfig, JobSpec, JobState};
use pnmcs::games::{SameGame, Sudoku, SumGame, TspGame, TspInstance};
use pnmcs::morpion::{cross_board, Variant};
use pnmcs::parallel::{
    run_threads, run_threads_traced, simulate_trace, trace::run_reference, DispatchPolicy, RunMode,
    ThreadConfig,
};
use pnmcs::search::exec::baseline::{leaf_parallel_spawn, root_parallel_spawn};
use pnmcs::search::{decode_sequence, CodedGame, DynGame, SearchSpec, Searcher, UctConfig};
use pnmcs::sim::ClusterSpec;

mod common;
use common::test_workers;

fn thread_config(level: u32, policy: DispatchPolicy) -> ThreadConfig {
    let mut cfg = ThreadConfig::new(level, policy, 3);
    cfg.n_medians = 6;
    cfg.seed = 4242;
    cfg
}

#[test]
fn threads_match_reference_on_morpion() {
    // Tiny cross: a complete level-2 parallel game in well under a second.
    let board = cross_board(Variant::Disjoint, 2);
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        let cfg = thread_config(2, policy);
        let (t_out, _) = run_threads(&board, &cfg);
        let (r_out, _) = run_reference(&board, 2, cfg.seed, RunMode::FullGame, None);
        assert_eq!(t_out.score, r_out.score, "{policy}");
        assert_eq!(t_out.sequence, r_out.sequence, "{policy}");
        assert_eq!(t_out.total_work, r_out.total_work, "{policy}");
        assert_eq!(t_out.client_jobs, r_out.client_jobs, "{policy}");
    }
}

#[test]
fn unified_spec_matches_reference_and_threads() {
    // The new front door's root-parallel executor joins the agreement
    // set: spec ≡ reference ≡ threads, score/sequence/work/jobs.
    let board = cross_board(Variant::Disjoint, 2);
    for mode in [RunMode::FullGame, RunMode::FirstMove] {
        let mut cfg = thread_config(2, DispatchPolicy::LastMinute);
        cfg.mode = mode;
        let (t_out, _) = run_threads(&board, &cfg);
        let (r_out, _) = run_reference(&board, 2, cfg.seed, mode, None);
        let spec_report = cfg.to_spec().search(&board, None);
        assert_eq!(spec_report.score, r_out.score, "{mode:?}");
        assert_eq!(spec_report.sequence, r_out.sequence, "{mode:?}");
        assert_eq!(spec_report.stats.work_units, r_out.total_work, "{mode:?}");
        assert_eq!(spec_report.client_jobs, r_out.client_jobs, "{mode:?}");
        assert_eq!(spec_report.score, t_out.score, "{mode:?}");
        // A different worker count cannot change anything.
        let wide = SearchSpec::root_parallel(2, 7).seed(cfg.seed);
        let wide = if mode == RunMode::FirstMove {
            wide.first_move_only()
        } else {
            wide
        };
        let wide_report = wide.run(&board);
        assert_eq!(wide_report.score, spec_report.score, "{mode:?}");
        assert_eq!(wide_report.sequence, spec_report.sequence, "{mode:?}");
        assert_eq!(wide_report.stats, spec_report.stats, "{mode:?}");
    }
}

#[test]
fn simulator_executes_exactly_the_recorded_jobs() {
    let board = cross_board(Variant::Disjoint, 2);
    let (_, trace) = run_reference(&board, 2, 9, RunMode::FullGame, None);
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        let out = simulate_trace(&trace, &ClusterSpec::homogeneous(5), policy);
        assert_eq!(out.stats.jobs, trace.client_jobs, "{policy}");
        assert_eq!(out.stats.total_work, trace.total_work, "{policy}");
    }
}

#[test]
fn first_move_agreement_at_level_3() {
    let board = cross_board(Variant::Disjoint, 2);
    let mut cfg = thread_config(3, DispatchPolicy::LastMinute);
    cfg.mode = RunMode::FirstMove;
    let (t_out, _) = run_threads(&board, &cfg);
    let (r_out, _) = run_reference(&board, 3, cfg.seed, RunMode::FirstMove, None);
    assert_eq!(t_out.score, r_out.score);
    assert_eq!(t_out.sequence, r_out.sequence);
}

#[test]
fn message_flow_follows_figures_2_through_5() {
    use pnmcs::parallel::{DISPATCHER, ROOT};
    let g = SumGame::random(4, 3, 8);
    let mut cfg = thread_config(2, DispatchPolicy::LastMinute);
    cfg.mode = RunMode::FirstMove;
    let (_, _, log) = run_threads_traced(&g, &cfg);

    // Figure 2 (a): the root opens by sending positions to medians.
    let first_sends: Vec<_> = log.iter().filter(|e| e.from == ROOT).collect();
    assert!(first_sends
        .iter()
        .all(|e| e.tag == "EvalRequest" || e.tag == "Shutdown"));

    // Figure 2 (b): every client request is mediated by the dispatcher.
    let asks = log.iter().filter(|e| e.tag == "WhichClient").count();
    let grants = log.iter().filter(|e| e.tag == "UseClient").count();
    assert_eq!(asks, grants, "every ask is granted exactly once");

    // Figure 4 (c'): Last-Minute clients notify the dispatcher.
    let frees = log.iter().filter(|e| e.tag == "ClientFree").count();
    let client_results = log
        .iter()
        .filter(|e| e.tag == "EvalResult" && e.to != ROOT)
        .count();
    assert_eq!(frees, client_results, "one free notice per client job");
    assert!(log
        .iter()
        .any(|e| e.to == DISPATCHER && e.tag == "ClientFree"));

    // Figure 2 (d): medians report to the root (3 candidate moves).
    let to_root = log
        .iter()
        .filter(|e| e.to == ROOT && e.tag == "EvalResult")
        .count();
    assert_eq!(to_root, 3);
}

#[test]
fn round_robin_run_has_no_free_notices() {
    let g = SumGame::random(4, 3, 8);
    let mut cfg = thread_config(2, DispatchPolicy::RoundRobin);
    cfg.mode = RunMode::FirstMove;
    let (_, _, log) = run_threads_traced(&g, &cfg);
    assert_eq!(
        log.iter().filter(|e| e.tag == "ClientFree").count(),
        0,
        "Figure 2's protocol has no (c') message"
    );
}

#[test]
fn pool_backed_leaf_executor_is_bit_identical_to_the_spawn_baseline() {
    // The tentpole contract: moving the executors onto the persistent
    // pool changed *when* work runs, never *what* it computes. The
    // frozen PR-3 spawn-per-step implementation is the oracle.
    let sg = SameGame::random(7, 7, 3, 2);
    let board = cross_board(Variant::Disjoint, 2);
    for seed in [1u64, 42, 2009] {
        for threads in [1usize, 2, test_workers()] {
            let spec = SearchSpec::leaf(1, 4, threads).seed(seed).run(&sg);
            let spawn = leaf_parallel_spawn(&sg, 1, 4, threads, None, false, seed);
            assert_eq!(spec.score, spawn.score, "samegame seed {seed} t{threads}");
            assert_eq!(spec.sequence, spawn.sequence, "samegame seed {seed}");
            assert_eq!(spec.stats, spawn.stats, "samegame seed {seed}");
            assert_eq!(spec.client_jobs, spawn.client_jobs, "samegame seed {seed}");

            let spec = SearchSpec::leaf(2, 2, threads)
                .seed(seed)
                .first_move_only()
                .run(&board);
            let spawn = leaf_parallel_spawn(&board, 2, 2, threads, None, true, seed);
            assert_eq!(spec.score, spawn.score, "morpion seed {seed} t{threads}");
            assert_eq!(spec.sequence, spawn.sequence, "morpion seed {seed}");
            assert_eq!(spec.stats, spawn.stats, "morpion seed {seed}");
        }
    }
}

#[test]
fn pool_backed_root_executor_is_bit_identical_to_the_spawn_baseline() {
    let board = cross_board(Variant::Disjoint, 2);
    for seed in [7u64, 4242] {
        for threads in [1usize, test_workers()] {
            let spec = SearchSpec::root_parallel(2, threads).seed(seed).run(&board);
            let spawn = root_parallel_spawn(&board, 2, threads, None, false, seed);
            assert_eq!(spec.score, spawn.score, "seed {seed} t{threads}");
            assert_eq!(spec.sequence, spawn.sequence, "seed {seed} t{threads}");
            assert_eq!(spec.stats, spawn.stats, "seed {seed} t{threads}");
            assert_eq!(spec.client_jobs, spawn.client_jobs, "seed {seed}");
        }
    }
}

#[test]
fn leaf_results_are_bit_identical_across_1_2_4_workers() {
    // Regression net for the per-slot scratch reuse: a leaked buffer or
    // seed would show up as a worker-count-dependent result.
    let sg = SameGame::random(8, 8, 4, 6);
    let reference = SearchSpec::leaf(1, 4, 1).seed(11).run(&sg);
    for threads in [2usize, 4] {
        let wide = SearchSpec::leaf(1, 4, threads).seed(11).run(&sg);
        assert_eq!(wide.score, reference.score, "{threads} workers");
        assert_eq!(wide.sequence, reference.sequence, "{threads} workers");
        assert_eq!(wide.stats, reference.stats, "{threads} workers");
        assert_eq!(wide.client_jobs, reference.client_jobs, "{threads} workers");
    }
}

#[test]
fn single_worker_tree_parallel_equals_sequential_uct_on_real_domains() {
    // The acceptance contract of the sharded/WU-UCT rework: whatever
    // the lock strategy and stats mode, one unbatched worker draws the
    // exact RNG stream of sequential `uct` — both selection formulas
    // reduce to the sequential one when nothing is in flight.
    use pnmcs::search::{LockStrategy, StatsMode};
    let cfg = UctConfig {
        iterations: 400,
        ..UctConfig::default()
    };
    let sg = SameGame::random(6, 6, 3, 9);
    let tsp = TspGame::new(TspInstance::random(9, 3), None);
    let modes = [
        (LockStrategy::Global, StatsMode::VirtualLoss),
        (LockStrategy::Global, StatsMode::WuUct),
        (LockStrategy::Sharded, StatsMode::VirtualLoss),
        (LockStrategy::Sharded, StatsMode::WuUct),
    ];
    for seed in [1u64, 2009] {
        let uct_sg = SearchSpec::uct_with(cfg.clone()).seed(seed).run(&sg);
        let uct_tsp = SearchSpec::uct_with(cfg.clone()).seed(seed).run(&tsp);
        for (lock, stats) in modes {
            let tree_sg = SearchSpec::tree_parallel_with(cfg.clone(), 1)
                .lock_strategy(lock)
                .stats_mode(stats)
                .seed(seed)
                .run(&sg);
            let label = format!("samegame seed {seed} {lock:?}/{stats:?}");
            assert_eq!(tree_sg.score, uct_sg.score, "{label}");
            assert_eq!(tree_sg.sequence, uct_sg.sequence, "{label}");
            assert_eq!(tree_sg.stats, uct_sg.stats, "{label}");

            let tree_tsp = SearchSpec::tree_parallel_with(cfg.clone(), 1)
                .lock_strategy(lock)
                .stats_mode(stats)
                .seed(seed)
                .run(&tsp);
            let label = format!("tsp seed {seed} {lock:?}/{stats:?}");
            assert_eq!(tree_tsp.score, uct_tsp.score, "{label}");
            assert_eq!(tree_tsp.sequence, uct_tsp.sequence, "{label}");
            assert_eq!(tree_tsp.stats, uct_tsp.stats, "{label}");
        }
    }
}

#[test]
fn batched_single_worker_tree_parallel_is_run_to_run_deterministic() {
    // Batched leaves at one worker promise schedule independence (slab
    // rollouts are iteration-seeded, backed up in slot order): two runs
    // of the same spec are bit-identical no matter how the pool places
    // the slab slots — on an undo-path domain and a clone-path one.
    let cfg = UctConfig {
        iterations: 300,
        ..UctConfig::default()
    };
    let sg = SameGame::random(6, 6, 3, 2);
    let tsp = TspGame::new(TspInstance::random(8, 4), None);
    for seed in [3u64, 11] {
        let spec = SearchSpec::tree_parallel_with(cfg.clone(), 1)
            .leaf_batch(4)
            .seed(seed)
            .build();
        assert!(spec.algorithm.worker_count_deterministic());
        let a = spec.run(&sg);
        let b = spec.run(&sg);
        assert_eq!(
            (a.score, &a.sequence, &a.stats),
            (b.score, &b.sequence, &b.stats),
            "samegame seed {seed}"
        );
        let a = spec.run(&tsp);
        let b = spec.run(&tsp);
        assert_eq!(
            (a.score, &a.sequence, &a.stats),
            (b.score, &b.sequence, &b.stats),
            "tsp seed {seed}"
        );
    }
}

/// Runs tree-parallel on `game` at the CI worker count through the
/// typed path and the erased path, asserting the replay invariant (the
/// one promise multi-worker tree-parallel makes) on both — for the
/// default sharded/WU-UCT configuration, the global-mutex baseline,
/// and the batched-leaf mode.
fn tree_parallel_runs_on<G>(game: &G, label: &str)
where
    G: CodedGame + Send + Sync + 'static,
    G::Move: Send + Sync + std::fmt::Debug + PartialEq,
{
    use pnmcs::search::{LockStrategy, StatsMode};
    let workers = test_workers();
    let cfg = UctConfig {
        iterations: 300,
        ..UctConfig::default()
    };
    let specs = [
        SearchSpec::tree_parallel_with(cfg.clone(), workers)
            .seed(5)
            .build(),
        SearchSpec::tree_parallel_with(cfg.clone(), workers)
            .lock_strategy(LockStrategy::Global)
            .stats_mode(StatsMode::VirtualLoss)
            .seed(5)
            .build(),
        SearchSpec::tree_parallel_with(cfg, workers)
            .leaf_batch(4)
            .seed(5)
            .build(),
    ];
    for spec in specs {
        let typed = spec.run(game);
        let mut replay = game.clone();
        for mv in &typed.sequence {
            replay.play(mv);
        }
        assert_eq!(replay.score(), typed.score, "{label}: typed replay");
        assert_eq!(typed.stats.playouts, 300, "{label}: shared iteration total");

        let erased = spec.search(&DynGame::new(game.clone()), None);
        let decoded = decode_sequence(game, &erased.sequence);
        let mut replay = game.clone();
        for mv in &decoded {
            replay.play(mv);
        }
        assert_eq!(replay.score(), erased.score, "{label}: erased replay");
    }
}

#[test]
fn tree_parallel_runs_on_all_five_domains_typed_and_erased() {
    tree_parallel_runs_on(&cross_board(Variant::Disjoint, 2), "morpion");
    tree_parallel_runs_on(&SameGame::random(6, 6, 3, 4), "samegame");
    tree_parallel_runs_on(&TspGame::new(TspInstance::random(8, 2), None), "tsp");
    tree_parallel_runs_on(&Sudoku::puzzle(3, 30, 7), "sudoku");
    tree_parallel_runs_on(&SumGame::random(6, 4, 3), "sumgame");
}

#[test]
fn tree_parallel_reaches_every_domain_through_the_engine() {
    // The erased (engine) path of the acceptance criterion: a
    // tree-parallel JobSpec on each domain completes and its decoded
    // best line replays to the reported score.
    let engine = Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 16,
    })
    .expect("valid engine config");
    let workers = test_workers();
    let spec = SearchSpec::tree_parallel_with(
        UctConfig {
            iterations: 200,
            ..UctConfig::default()
        },
        workers,
    )
    .seed(17)
    .build();

    fn check<G>(engine: &Engine, game: G, spec: &SearchSpec, label: &str)
    where
        G: CodedGame + Send + Sync + 'static,
        G::Move: Send + Sync,
    {
        let handle = engine
            .submit(JobSpec::from_spec(label, game.clone(), spec.clone()))
            .expect("submit tree-parallel job");
        let output = handle.join();
        assert_eq!(output.state, JobState::Completed, "{label}");
        let best = output.best.expect("completed job has a result");
        let decoded = decode_sequence(&game, &best.result.sequence);
        let mut replay = game;
        for mv in &decoded {
            replay.play(mv);
        }
        assert_eq!(replay.score(), best.result.score, "{label}: engine replay");
    }

    check(&engine, cross_board(Variant::Disjoint, 2), &spec, "morpion");
    check(&engine, SameGame::random(6, 6, 3, 8), &spec, "samegame");
    check(
        &engine,
        TspGame::new(TspInstance::random(8, 5), None),
        &spec,
        "tsp",
    );
    check(&engine, Sudoku::puzzle(3, 30, 2), &spec, "sudoku");
    check(&engine, SumGame::random(6, 4, 9), &spec, "sumgame");
    engine.shutdown();
}

#[test]
fn playout_caps_propagate_to_all_backends() {
    let board = cross_board(Variant::Disjoint, 3);
    let mut cfg = thread_config(2, DispatchPolicy::LastMinute);
    cfg.mode = RunMode::FirstMove;
    cfg.playout_cap = Some(4);
    let (t_out, _) = run_threads(&board, &cfg);
    let (r_out, _) = run_reference(&board, 2, cfg.seed, RunMode::FirstMove, Some(4));
    assert_eq!(t_out.score, r_out.score);
    assert_eq!(t_out.total_work, r_out.total_work);
}
