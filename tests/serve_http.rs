//! End-to-end tests of the HTTP front door (`nmcs-serve`), driven over
//! real sockets with a hand-rolled HTTP/1.1 client:
//!
//! * every `AlgorithmSpec` variant submitted over the wire is
//!   bit-identical (score, decoded sequence, playouts, work units,
//!   seed) to the direct `SearchSpec::run` library call — the
//!   `tests/engine_service.rs` criterion extended to the socket;
//! * a proptest re-checks that identity across random seeds;
//! * budget-tripped jobs carry their interruption over the wire and
//!   still match the direct call; cancelled jobs come back terminal
//!   with no fabricated result;
//! * over-quota and unmeetable-deadline submissions get `429` with
//!   `Retry-After` and are never enqueued (the engine's submitted
//!   counter proves it);
//! * `GET /metrics` parses as Prometheus text and the JSON form
//!   round-trips byte-identically through the snapshot types;
//! * `?stream=1` streams parseable NDJSON progress until terminal;
//! * the error paths answer 400/404/405 as documented.

use pnmcs::engine::EngineConfig;
use pnmcs::games::SumGame;
use pnmcs::morpion::standard_5d;
use pnmcs::search::metrics::MetricsSnapshot;
use pnmcs::search::nrpa::CodedGame;
use pnmcs::search::{decode_result, SearchResult, SearchSpec, SearchStats};
use pnmcs::serve::{ServeConfig, Server};
use proptest::prelude::*;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

mod common;
use common::test_workers;

// ---------------------------------------------------------------------
// A minimal HTTP/1.1 client: one request per connection.
// ---------------------------------------------------------------------

type ClientResponse = (u16, Vec<(String, String)>, String);

fn send(addr: SocketAddr, raw: String) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    parse_response(&buf)
}

fn parse_response(raw: &[u8]) -> ClientResponse {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body_raw = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    let body = if chunked {
        dechunk(body_raw)
    } else {
        body_raw.to_vec()
    };
    (
        status,
        headers,
        String::from_utf8(body).expect("UTF-8 body"),
    )
}

fn dechunk(mut raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    while let Some(pos) = raw.windows(2).position(|w| w == b"\r\n") {
        let size = usize::from_str_radix(
            std::str::from_utf8(&raw[..pos])
                .expect("chunk size line")
                .trim(),
            16,
        )
        .expect("hex chunk size");
        if size == 0 {
            break;
        }
        out.extend_from_slice(&raw[pos + 2..pos + 2 + size]);
        raw = &raw[pos + 2 + size + 2..];
    }
    out
}

fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    send(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> ClientResponse {
    send(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete(addr: SocketAddr, path: &str) -> ClientResponse {
    send(
        addr,
        format!("DELETE {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

// ---------------------------------------------------------------------
// JSON plumbing over the vendored `serde::Value`.
// ---------------------------------------------------------------------

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn field<'a>(v: &'a Value, k: &str) -> &'a Value {
    v.get_field(k)
        .unwrap_or_else(|| panic!("missing field {k} in {v:?}"))
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) => u64::try_from(*n).expect("non-negative"),
        other => panic!("expected integer, got {other:?}"),
    }
}

fn as_i64(v: &Value) -> i64 {
    match v {
        Value::I64(n) => *n,
        Value::U64(n) => i64::try_from(*n).expect("in range"),
        other => panic!("expected integer, got {other:?}"),
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

// ---------------------------------------------------------------------
// Server + submit helpers.
// ---------------------------------------------------------------------

fn server(tenant_quota: usize, workers: usize, queue_capacity: usize) -> Server {
    Server::start(ServeConfig {
        engine: EngineConfig {
            workers,
            queue_capacity,
        },
        tenant_quota,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port")
}

fn submit_body(tenant: &str, game: &str, spec: &SearchSpec, extra: &str) -> String {
    let spec_json = serde_json::to_string(spec).expect("spec serialises");
    format!(r#"{{"tenant":"{tenant}","game":"{game}","spec":{spec_json}{extra}}}"#)
}

/// Submits a job and blocks (`?wait=1`) for its terminal output value.
fn submit_and_wait(addr: SocketAddr, body: &str) -> Value {
    let (status, _, resp) = post(addr, "/jobs", body);
    assert_eq!(status, 202, "submit should be accepted: {resp}");
    let accepted = json(&resp);
    assert_eq!(as_str(field(&accepted, "state")), "queued");
    let id = as_u64(field(&accepted, "job"));
    let (status, _, out) = get(addr, &format!("/jobs/{id}?wait=1"));
    assert_eq!(status, 200, "wait should find the job: {out}");
    json(&out)
}

/// The 11 deterministic strategy shapes of the unified API (the
/// `tests/metrics_props.rs` list): every `AlgorithmSpec` variant, with
/// tree-parallel at one worker — its deterministic form.
fn all_specs(seed: u64) -> Vec<SearchSpec> {
    vec![
        SearchSpec::nested(1).seed(seed).build(),
        SearchSpec::nrpa(1).seed(seed).build(),
        SearchSpec::uct().seed(seed).build(),
        SearchSpec::flat_mc(128).seed(seed).build(),
        SearchSpec::iterated_sampling(2).seed(seed).build(),
        SearchSpec::beam(3, 1).seed(seed).build(),
        SearchSpec::sample().seed(seed).build(),
        SearchSpec::leaf(1, 4, 2).seed(seed).build(),
        SearchSpec::root_parallel(2, 2).seed(seed).build(),
        SearchSpec::tree_parallel(1).seed(seed).build(),
        SearchSpec::tree_parallel(1)
            .leaf_batch(4)
            .leaf_batch_dynamic(true)
            .seed(seed)
            .build(),
    ]
}

/// Asserts the wire output of a completed single-replica job matches
/// the direct library call on the same typed game: same score, same
/// decoded sequence, same playout/work-unit counters, same seed.
fn assert_bit_identical<G>(game: &G, spec: &SearchSpec, output: &Value)
where
    G: CodedGame + Send + Sync,
    G::Move: PartialEq + std::fmt::Debug + Send + Sync,
{
    assert_eq!(as_str(field(output, "state")), "completed", "{output:?}");
    let best = field(output, "best");
    assert_eq!(as_u64(field(best, "seed_used")), spec.seed);
    let codes: Vec<usize> = match field(best, "sequence") {
        Value::Array(xs) => xs.iter().map(|x| as_u64(x) as usize).collect(),
        other => panic!("sequence should be an array, got {other:?}"),
    };
    let coded = SearchResult {
        score: as_i64(field(best, "score")),
        sequence: codes,
        stats: SearchStats::default(),
    };
    let decoded = decode_result(game, &coded);
    let direct = spec.run(game).into_result();
    assert_eq!(decoded.score, direct.score, "score over the wire");
    assert_eq!(decoded.sequence, direct.sequence, "decoded move sequence");
    assert_eq!(
        as_u64(field(best, "playouts")),
        direct.stats.playouts,
        "playout counter"
    );
    assert_eq!(
        as_u64(field(best, "work_units")),
        direct.stats.work_units,
        "work-unit counter"
    );
}

// ---------------------------------------------------------------------
// Bit-identity through the socket.
// ---------------------------------------------------------------------

#[test]
fn every_algorithm_round_trips_bit_identically_through_the_socket() {
    let server = server(64, test_workers(), 32);
    let addr = server.addr();
    let seed = 2026;
    let game = SumGame::random(6, 4, seed);
    for spec in all_specs(seed) {
        let output = submit_and_wait(addr, &submit_body("rt", "sum", &spec, ""));
        assert_bit_identical(&game, &spec, &output);
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The same identity holds for arbitrary seeds — each case runs
    /// every variant through a fresh server.
    #[test]
    fn socket_round_trip_is_bit_identical_for_any_seed(seed in 1u64..u64::MAX / 2) {
        let server = server(64, test_workers(), 32);
        let addr = server.addr();
        let game = SumGame::random(6, 4, seed);
        for spec in all_specs(seed) {
            let output = submit_and_wait(addr, &submit_body("prop", "sum", &spec, ""));
            assert_bit_identical(&game, &spec, &output);
        }
        server.shutdown();
    }
}

#[test]
fn budget_tripped_jobs_round_trip_and_report_the_interruption() {
    let server = server(8, 1, 8);
    let addr = server.addr();
    let game = standard_5d();
    let spec = SearchSpec::nested(1).max_playouts(64).seed(41).build();
    let output = submit_and_wait(addr, &submit_body("budget", "morpion", &spec, ""));
    let best = field(&output, "best");
    assert_eq!(
        as_str(field(best, "interrupted")),
        "playout-budget",
        "the budget trip must be visible over the wire"
    );
    // The interruption is part of the deterministic result: the direct
    // call trips at the same playout and returns the same partial best.
    assert_bit_identical(&game, &spec, &output);
    server.shutdown();
}

#[test]
fn cancelled_jobs_come_back_terminal_with_no_fabricated_result() {
    let server = server(8, 1, 8);
    let addr = server.addr();
    // A blocker pinned to the single worker for ~300 ms guarantees the
    // victim is still queued when the DELETE lands.
    let blocker = SearchSpec::nested(3).deadline_ms(300).seed(1).build();
    let (status, _, resp) = post(addr, "/jobs", &submit_body("cx", "morpion", &blocker, ""));
    assert_eq!(status, 202, "{resp}");
    let blocker_id = as_u64(field(&json(&resp), "job"));

    let victim = SearchSpec::nested(2).deadline_ms(300).seed(2).build();
    let (status, _, resp) = post(addr, "/jobs", &submit_body("cx", "morpion", &victim, ""));
    assert_eq!(status, 202, "{resp}");
    let victim_id = as_u64(field(&json(&resp), "job"));

    let (status, _, resp) = delete(addr, &format!("/jobs/{victim_id}"));
    assert_eq!(status, 200, "{resp}");
    let cancelled = json(&resp);
    assert_eq!(field(&cancelled, "cancelled"), &Value::Bool(true));

    let (status, _, out) = get(addr, &format!("/jobs/{victim_id}?wait=1"));
    assert_eq!(status, 200);
    let output = json(&out);
    assert_eq!(as_str(field(&output, "state")), "cancelled", "{out}");
    assert_eq!(field(&output, "best"), &Value::Null, "no fabricated result");

    let (_, _, out) = get(addr, &format!("/jobs/{blocker_id}?wait=1"));
    assert_eq!(as_str(field(&json(&out), "state")), "completed");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

#[test]
fn over_quota_submissions_get_429_and_are_never_enqueued() {
    let server = server(1, 1, 8); // quota: one in-flight job per tenant
    let addr = server.addr();
    let long = SearchSpec::nested(2).deadline_ms(400).seed(5).build();
    let (status, _, resp) = post(addr, "/jobs", &submit_body("acme", "morpion", &long, ""));
    assert_eq!(status, 202, "{resp}");
    let first_id = as_u64(field(&json(&resp), "job"));

    // Same tenant, quota exhausted: 429 + Retry-After, never enqueued.
    let cheap = SearchSpec::sample().seed(6).build();
    let (status, headers, resp) = post(addr, "/jobs", &submit_body("acme", "sum", &cheap, ""));
    assert_eq!(status, 429, "{resp}");
    let err = json(&resp);
    assert!(
        as_str(field(&err, "error")).contains("quota"),
        "reason names the quota: {resp}"
    );
    assert!(as_u64(field(&err, "retry_after_ms")) >= 250);
    let retry: u64 = header(&headers, "retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("seconds");
    assert!(retry >= 1);

    // A different tenant is unaffected — the quota is per tenant.
    let out = submit_and_wait(addr, &submit_body("other", "sum", &cheap, ""));
    assert_eq!(as_str(field(&out, "state")), "completed");

    // The engine saw exactly the two accepted jobs, not the shed one.
    let (_, _, metrics) = get(addr, "/metrics?format=json");
    let snapshot = json(&metrics);
    let engine = field(&snapshot, "engine");
    assert_eq!(as_u64(field(engine, "submitted_jobs")), 2);
    assert_eq!(as_u64(field(engine, "rejected_submissions")), 0);

    let (_, _, out) = get(addr, &format!("/jobs/{first_id}?wait=1"));
    assert_eq!(as_str(field(&json(&out), "state")), "completed");
    server.shutdown();
}

#[test]
fn unmeetable_deadlines_are_shed_with_429_and_retry_after() {
    let server = server(64, 1, 16);
    let addr = server.addr();
    let slow = |seed| SearchSpec::nested(2).deadline_ms(150).seed(seed).build();

    // Warm the queue-wait histogram: the second job waits ~150 ms for
    // the single worker, so the p95 estimate becomes real.
    let (s1, _, r1) = post(addr, "/jobs", &submit_body("load", "morpion", &slow(1), ""));
    let (s2, _, r2) = post(addr, "/jobs", &submit_body("load", "morpion", &slow(2), ""));
    assert_eq!((s1, s2), (202, 202), "{r1} / {r2}");
    for resp in [&r1, &r2] {
        let id = as_u64(field(&json(resp), "job"));
        get(addr, &format!("/jobs/{id}?wait=1"));
    }

    // Pin the worker again and park one job in the queue, so depth ≥ 1
    // while the shed candidate arrives.
    let (s3, _, r3) = post(addr, "/jobs", &submit_body("load", "morpion", &slow(3), ""));
    let queued = SearchSpec::sample().seed(4).build();
    let (s4, _, r4) = post(
        addr,
        "/jobs",
        &submit_body("load", "sum", &queued, r#","ttl_ms":60000"#),
    );
    assert_eq!((s3, s4), (202, 202), "{r3} / {r4}");

    // A 1 ms allowance cannot be met behind a ~150 ms p95 queue wait.
    let (status, headers, resp) = post(
        addr,
        "/jobs",
        &submit_body("load", "sum", &queued, r#","ttl_ms":1"#),
    );
    assert_eq!(status, 429, "{resp}");
    let err = json(&resp);
    assert!(
        as_str(field(&err, "error")).contains("deadline"),
        "reason names the deadline: {resp}"
    );
    assert!(as_u64(field(&err, "retry_after_ms")) > 1);
    assert!(header(&headers, "retry-after").is_some());

    // Shed jobs were never enqueued: exactly the four accepted jobs.
    let (_, _, metrics) = get(addr, "/metrics?format=json");
    let engine = field(&json(&metrics), "engine").clone();
    assert_eq!(as_u64(field(&engine, "submitted_jobs")), 4);

    for resp in [&r3, &r4] {
        let id = as_u64(field(&json(resp), "job"));
        get(addr, &format!("/jobs/{id}?wait=1"));
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Metrics endpoint.
// ---------------------------------------------------------------------

#[test]
fn metrics_text_parses_and_json_round_trips() {
    let server = server(8, 1, 8);
    let addr = server.addr();
    let spec = SearchSpec::nested(1).seed(9).build();
    submit_and_wait(addr, &submit_body("mx", "samegame-small", &spec, ""));

    // Text form: every non-comment line is `name{labels} value`.
    let (status, headers, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(header(&headers, "content-type")
        .expect("content type")
        .starts_with("text/plain"));
    assert!(!text.is_empty());
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value separator in {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "value of {line:?} must be numeric"
        );
        assert!(
            series
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic()),
            "series name of {line:?} must start alphabetic"
        );
        assert_eq!(
            series.contains('{'),
            series.ends_with('}'),
            "unbalanced labels in {line:?}"
        );
    }
    assert!(text.contains("pool_workers "));
    assert!(text.contains("engine_tag_collisions_total "));

    // JSON form: the inspector snapshot verbatim, and it round-trips
    // byte-identically through the snapshot types.
    let (status, headers, body) = get(addr, "/metrics?format=json");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let parsed: MetricsSnapshot = serde_json::from_str(&body).expect("snapshot deserialises");
    assert!(
        parsed.engine.is_some(),
        "served snapshot has the engine section"
    );
    let reencoded = serde_json::to_string(&parsed).expect("snapshot reserialises");
    assert_eq!(reencoded, body, "JSON round-trip is byte-identical");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Streaming and error paths.
// ---------------------------------------------------------------------

#[test]
fn streaming_progress_emits_ndjson_until_terminal() {
    let server = server(8, 1, 8);
    let addr = server.addr();
    let spec = SearchSpec::nested(1).seed(11).build();
    let (status, _, resp) = post(
        addr,
        "/jobs",
        &submit_body("st", "samegame-small", &spec, ""),
    );
    assert_eq!(status, 202, "{resp}");
    let id = as_u64(field(&json(&resp), "job"));

    let (status, headers, body) = get(addr, &format!("/jobs/{id}?stream=1"));
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("application/x-ndjson")
    );
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(
        lines.len() >= 2,
        "at least one progress line plus the output"
    );
    for line in &lines[..lines.len() - 1] {
        let progress = json(line);
        assert_eq!(as_u64(field(&progress, "job")), id);
        assert!(progress.get_field("state").is_some());
    }
    let last = json(lines.last().expect("final line"));
    assert_eq!(as_str(field(&last, "state")), "completed");
    assert!(
        last.get_field("best").is_some(),
        "stream ends with the output"
    );
    server.shutdown();
}

#[test]
fn error_paths_answer_400_404_405_as_documented() {
    let server = server(8, 1, 8);
    let addr = server.addr();

    let (status, _, resp) = post(addr, "/jobs", "{not json");
    assert_eq!(status, 400, "{resp}");
    assert!(as_str(field(&json(&resp), "error")).contains("bad submit request"));

    let spec = SearchSpec::sample().seed(1).build();
    let (status, _, resp) = post(addr, "/jobs", &submit_body("t", "chess", &spec, ""));
    assert_eq!(status, 404, "{resp}");
    assert!(as_str(field(&json(&resp), "error")).contains("unknown game"));

    let (status, _, resp) = post(addr, "/jobs", &submit_body("", "sum", &spec, ""));
    assert_eq!(status, 400, "empty tenant: {resp}");

    let (status, _, _) = get(addr, "/jobs/999999");
    assert_eq!(status, 404, "unknown job id");

    let (status, _, _) = delete(addr, "/metrics");
    assert_eq!(status, 405, "wrong method on a known route");

    let (status, _, _) = get(addr, "/no/such/route");
    assert_eq!(status, 404);

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.shutdown();
}
