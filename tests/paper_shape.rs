//! Shape checks against the paper's published results: who wins, by
//! roughly what factor, and where the structure lands. These use the
//! paper-scale synthetic workloads (fast) — the full regeneration lives
//! in the `tables` binary.

use nmcs_bench::paper;
use pnmcs::parallel::{simulate_trace, DispatchPolicy, RunMode, TraceModel};
use pnmcs::sim::ClusterSpec;

fn level3_first_move() -> pnmcs::parallel::SearchTrace {
    TraceModel::level3_like().synthesize(RunMode::FirstMove, 2009)
}

fn anchored(trace: &pnmcs::parallel::SearchTrace, secs: u64) -> f64 {
    secs as f64 * 1e9 / trace.total_work as f64
}

#[test]
fn speedup_at_64_clients_lands_near_56() {
    let trace = level3_first_move();
    let nspu = anchored(&trace, paper::paper_time(paper::T2_RR_FIRST_L3, 1).unwrap());
    let t1 = simulate_trace(
        &trace,
        &ClusterSpec::homogeneous(1).with_ns_per_unit(nspu),
        DispatchPolicy::RoundRobin,
    )
    .makespan;
    let t64 = simulate_trace(
        &trace,
        &ClusterSpec::paper_64().with_ns_per_unit(nspu),
        DispatchPolicy::RoundRobin,
    )
    .makespan;
    let speedup = t1 as f64 / t64 as f64;
    assert!(
        (45.0..70.0).contains(&speedup),
        "64-client speedup {speedup}, paper ~56"
    );
}

#[test]
fn speedup_at_32_homogeneous_lands_near_30() {
    let trace = level3_first_move();
    let nspu = anchored(&trace, 547);
    let t1 = simulate_trace(
        &trace,
        &ClusterSpec::homogeneous(1).with_ns_per_unit(nspu),
        DispatchPolicy::RoundRobin,
    )
    .makespan;
    let t32 = simulate_trace(
        &trace,
        &ClusterSpec::homogeneous(32).with_ns_per_unit(nspu),
        DispatchPolicy::RoundRobin,
    )
    .makespan;
    let speedup = t1 as f64 / t32 as f64;
    assert!(
        (26.0..33.0).contains(&speedup),
        "32-client speedup {speedup}, paper 29.8"
    );
}

#[test]
fn sweep_times_track_the_paper_within_a_factor() {
    // Row-by-row: anchored at the 1-client row, every other row of
    // Table II level 3 should land within ~35% of the paper's time.
    let trace = level3_first_move();
    let nspu = anchored(&trace, 547);
    for &(clients, paper_secs) in paper::T2_RR_FIRST_L3 {
        let cluster = if clients == 64 {
            ClusterSpec::paper_64().with_ns_per_unit(nspu)
        } else {
            ClusterSpec::homogeneous(clients).with_ns_per_unit(nspu)
        };
        let ours =
            simulate_trace(&trace, &cluster, DispatchPolicy::RoundRobin).makespan as f64 / 1e9;
        let ratio = ours / paper_secs as f64;
        assert!(
            (0.65..1.35).contains(&ratio),
            "{clients} clients: ours {ours:.0}s vs paper {paper_secs}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn heterogeneous_lm_advantage_matches_table6_direction_and_magnitude() {
    let trace = TraceModel::level4_like().synthesize(RunMode::FirstMove, 2009);
    let nspu = anchored(&trace, paper::paper_time(paper::T2_RR_FIRST_L4, 1).unwrap());
    for (cluster, paper_lm, paper_rr) in [
        (
            ClusterSpec::hetero_16x4_16x2().with_ns_per_unit(nspu),
            28 * 60 + 37,
            45 * 60 + 17,
        ),
        (
            ClusterSpec::hetero_8x4_8x2().with_ns_per_unit(nspu),
            58 * 60 + 21,
            3600 + 24 * 60 + 11,
        ),
    ] {
        let lm = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute).makespan;
        let rr = simulate_trace(&trace, &cluster, DispatchPolicy::RoundRobin).makespan;
        assert!(lm < rr, "LM must win");
        let our_gain = rr as f64 / lm as f64;
        let paper_gain = paper_rr as f64 / paper_lm as f64;
        assert!(
            (our_gain - paper_gain).abs() < 0.45,
            "LM gain {our_gain:.2} vs paper {paper_gain:.2}"
        );
    }
}

#[test]
fn full_game_costs_several_times_the_first_move() {
    // Table I: one rollout ≈ 9× the first move at level 3.
    let model = TraceModel::level3_like();
    let first = model.synthesize(RunMode::FirstMove, 2009).total_work as f64;
    let full = model.synthesize(RunMode::FullGame, 2009).total_work as f64;
    let ratio = full / first;
    assert!(
        (4.0..25.0).contains(&ratio),
        "rollout/first-move work ratio {ratio:.1}, paper ≈ 9"
    );
}

#[test]
fn level4_workload_is_two_orders_heavier_than_level3() {
    let l3 = TraceModel::level3_like()
        .synthesize(RunMode::FirstMove, 1)
        .total_work as f64;
    let l4 = TraceModel::level4_like()
        .synthesize(RunMode::FirstMove, 1)
        .total_work as f64;
    let ratio = l4 / l3;
    assert!(
        (100.0..400.0).contains(&ratio),
        "level ratio {ratio:.0}, paper ≈ 207"
    );
}
