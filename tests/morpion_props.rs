//! Property-based tests of the Morpion Solitaire rules.
//!
//! These check the invariants that define the game, independently of the
//! incremental machinery that maintains them:
//!
//! * 5D: no grid point is ever covered by two same-direction lines;
//! * 5T: no unit segment is ever covered by two same-direction lines;
//! * the cached candidate list always equals a from-scratch recompute;
//! * records round-trip through serialisation and replay.

use pnmcs::morpion::{cross_board, Dir, GameRecord, Move, Point, Variant, DIRS};
use pnmcs::search::Rng;
use proptest::prelude::*;
use std::collections::HashMap;

/// Plays a random game with the given seed, returning the final board and
/// the moves played.
fn random_game(
    variant: Variant,
    arm: i16,
    seed: u64,
    max_moves: usize,
) -> (pnmcs::morpion::Board, Vec<Move>) {
    let mut board = cross_board(variant, arm);
    let mut rng = Rng::seeded(seed);
    let mut played = Vec::new();
    while !board.candidates().is_empty() && played.len() < max_moves {
        let mv = board.candidates()[rng.below(board.candidates().len())];
        board.play_move(&mv);
        played.push(mv);
    }
    (board, played)
}

/// Independently verifies the variant's overlap constraints over a whole
/// move history.
fn assert_no_illegal_overlap(variant: Variant, history: &[Move]) {
    match variant {
        Variant::Disjoint => {
            // No (point, direction) pair may repeat.
            let mut used: HashMap<(Point, Dir), usize> = HashMap::new();
            for (i, mv) in history.iter().enumerate() {
                for p in mv.line_points() {
                    if let Some(prev) = used.insert((p, mv.dir), i) {
                        panic!(
                            "5D violation: point {p} direction {:?} used by moves {prev} and {i}",
                            mv.dir
                        );
                    }
                }
            }
        }
        Variant::Touching => {
            // No (segment, direction) pair may repeat; a segment is the
            // pair (p, p+dir).
            let mut used: HashMap<(Point, Dir), usize> = HashMap::new();
            for (i, mv) in history.iter().enumerate() {
                for k in 0..4 {
                    let p = mv.start.step(mv.dir, k);
                    if let Some(prev) = used.insert((p, mv.dir), i) {
                        panic!(
                            "5T violation: segment at {p} direction {:?} used by moves {prev} and {i}",
                            mv.dir
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_games_respect_overlap_rules(seed in 0u64..5000) {
        for variant in [Variant::Disjoint, Variant::Touching] {
            let (_, history) = random_game(variant, 3, seed, 200);
            prop_assert!(history.len() > 5, "{variant}: game too short");
            assert_no_illegal_overlap(variant, &history);
        }
    }

    #[test]
    fn every_move_adds_exactly_one_point(seed in 0u64..5000) {
        let (board, history) = random_game(Variant::Disjoint, 3, seed, 100);
        // Occupied = initial + one per move; the new point was empty.
        let mut count = 0;
        for y in 0..pnmcs::morpion::GRID {
            for x in 0..pnmcs::morpion::GRID {
                if board.occupied(Point::new(x, y)) {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, board.initial_points().len() + history.len());
    }

    #[test]
    fn cached_candidates_match_recompute_at_random_positions(
        seed in 0u64..2000,
        stop in 1usize..40,
    ) {
        for variant in [Variant::Disjoint, Variant::Touching] {
            let mut board = cross_board(variant, 3);
            let mut rng = Rng::seeded(seed);
            for _ in 0..stop {
                if board.candidates().is_empty() {
                    break;
                }
                let mv = board.candidates()[rng.below(board.candidates().len())];
                board.play_move(&mv);
            }
            let mut cached: Vec<Move> = board.candidates().to_vec();
            let mut full = board.recompute_candidates();
            let key = |m: &Move| (m.start.y, m.start.x, m.dir.index(), m.pos);
            cached.sort_by_key(key);
            full.sort_by_key(key);
            prop_assert_eq!(cached, full);
        }
    }

    #[test]
    fn records_round_trip_through_json(seed in 0u64..2000) {
        let (board, _) = random_game(Variant::Disjoint, 4, seed, 120);
        let rec = GameRecord::from_board(&board, "prop");
        let json = serde_json::to_string(&rec).unwrap();
        let back: GameRecord = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &rec);
        prop_assert_eq!(back.verify().unwrap(), board.move_count());
    }

    #[test]
    fn prefix_of_a_legal_game_is_legal(seed in 0u64..2000, cut in 0usize..30) {
        let (board, history) = random_game(Variant::Disjoint, 3, seed, 60);
        let cut = cut.min(history.len());
        let mut replay = cross_board(Variant::Disjoint, 3);
        for mv in &history[..cut] {
            prop_assert!(replay.is_legal(mv));
            replay.play_move(mv);
        }
        prop_assert_eq!(replay.move_count(), cut);
        let _ = board;
    }

    #[test]
    fn games_never_touch_the_grid_boundary(seed in 0u64..1000) {
        // The 64x64 window must be comfortably larger than any reachable
        // game; a point on the outer ring would mean rule distortion.
        let (board, _) = random_game(Variant::Touching, 4, seed, 300);
        let (min, max) = board.extent();
        prop_assert!(min.x > 1 && min.y > 1);
        prop_assert!(max.x < pnmcs::morpion::GRID - 2 && max.y < pnmcs::morpion::GRID - 2);
    }

    #[test]
    fn scores_are_monotone_along_games(seed in 0u64..1000) {
        use pnmcs::search::Game;
        let mut board = cross_board(Variant::Disjoint, 3);
        let mut rng = Rng::seeded(seed);
        let mut prev = board.score();
        while !board.candidates().is_empty() {
            let mv = board.candidates()[rng.below(board.candidates().len())];
            board.play_move(&mv);
            prop_assert_eq!(board.score(), prev + 1);
            prev = board.score();
        }
    }
}

#[test]
fn all_four_directions_appear_in_long_games() {
    // Sanity: a long 5T game on the standard cross uses all directions.
    let (board, history) = random_game(Variant::Touching, 4, 11, 500);
    assert!(board.move_count() > 30);
    for dir in DIRS {
        assert!(
            history.iter().any(|m| m.dir == dir),
            "direction {dir} never played in {} moves",
            history.len()
        );
    }
}
