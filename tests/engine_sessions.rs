//! Session lifecycle edge tests for the engine's warm-tree sessions:
//! TTL expiry, byte-bound eviction (the gauge plateaus), cancellation
//! mid-step (the session survives, nothing commits), budget-tripped
//! steps (commit normally, session stays usable), strict step
//! serialisation, and close-while-stepping.

use pnmcs::engine::{Engine, EngineConfig, JobState, SessionError, SessionLimits};
use pnmcs::games::SameGame;
use pnmcs::search::nrpa::CodedGame;
use pnmcs::search::{DynGame, Game, Score, SearchSpec};
use std::time::Duration;

fn engine() -> Engine {
    Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 16,
    })
    .expect("valid test configuration")
}

fn warm_spec(seed: u64) -> SearchSpec {
    SearchSpec::uct().tree_reuse(true).seed(seed).build()
}

/// A walk whose every move sleeps, so a step reliably outlives the few
/// milliseconds a test needs to act while it is in flight.
#[derive(Clone)]
struct SlowWalk {
    taken: Vec<u8>,
    depth: usize,
    pace: Duration,
}

impl SlowWalk {
    fn new(depth: usize, pace: Duration) -> Self {
        SlowWalk {
            taken: Vec::new(),
            depth,
            pace,
        }
    }
}

impl Game for SlowWalk {
    type Move = u8;
    fn legal_moves(&self, out: &mut Vec<u8>) {
        if self.taken.len() < self.depth {
            out.extend_from_slice(&[0, 1]);
        }
    }
    fn play(&mut self, mv: &u8) {
        std::thread::sleep(self.pace);
        self.taken.push(*mv);
    }
    fn score(&self) -> Score {
        self.taken.iter().map(|&m| m as Score).sum()
    }
    fn moves_played(&self) -> usize {
        self.taken.len()
    }
}

impl CodedGame for SlowWalk {
    fn move_code(&self, mv: &u8) -> u64 {
        ((self.taken.len() as u64) << 1) | *mv as u64
    }
}

#[test]
fn idle_sessions_expire_after_their_ttl() {
    let e = engine();
    e.set_session_limits(SessionLimits {
        ttl: Duration::from_millis(5),
        ..Default::default()
    });
    let id = e
        .open_session("ttl", SameGame::random(5, 5, 3, 1), warm_spec(1))
        .expect("under every bound");
    assert!(e.session_info(id).is_some());
    std::thread::sleep(Duration::from_millis(40));
    let stats = e.session_stats(); // the access-driven sweep
    assert_eq!(stats.open, 0, "idle past TTL");
    assert_eq!(stats.expired, 1);
    assert!(e.session_info(id).is_none());
    e.shutdown();
}

#[test]
fn byte_bound_eviction_keeps_the_gauge_plateaued() {
    let e = engine();
    let bound = 512 * 1024;
    e.set_session_limits(SessionLimits {
        max_bytes: bound,
        ..Default::default()
    });
    // Each warm session carries a ~100 KiB transposition-table backing
    // from the moment it opens (the 256 KiB budget rounds down to a
    // power-of-two set count); twelve of them far exceed the bound.
    let mut peak = 0;
    for i in 0..12u64 {
        e.open_session_dyn(
            "bytes",
            DynGame::new(SameGame::random(5, 5, 3, i)),
            warm_spec(i),
            Some(256 * 1024),
        )
        .expect("eviction always frees an idle slot");
        peak = peak.max(e.session_stats().bytes);
    }
    let stats = e.session_stats();
    assert!(
        stats.bytes <= bound,
        "after a sweep the gauge is under the bound: {} > {bound}",
        stats.bytes
    );
    assert!(stats.evicted >= 4, "churn evicted LRU sessions: {stats:?}");
    assert!(stats.open >= 1, "the newest sessions survive: {stats:?}");
    // The plateau: at no point did the table hold more than the bound
    // plus the one just-opened session the next sweep trims.
    assert!(
        peak <= bound + 300 * 1024,
        "gauge must plateau near the bound, peaked at {peak}"
    );
    e.shutdown();
}

#[test]
fn cancelling_a_warm_step_commits_nothing_and_keeps_the_session() {
    let e = engine();
    let id = e
        .open_session(
            "cancel",
            SlowWalk::new(40, Duration::from_millis(1)),
            warm_spec(2),
        )
        .unwrap();
    let h = e.submit_session(id).unwrap();
    assert!(e.session_info(id).unwrap().busy, "busy from submission");
    // Let the worker get into the search, then cancel mid-step.
    std::thread::sleep(Duration::from_millis(10));
    h.cancel();
    let out = h.join();
    assert_eq!(out.state, JobState::Cancelled);
    let info = e.session_info(id).expect("session survives cancellation");
    assert!(!info.busy, "the step released its in-flight flag");
    assert_eq!(info.committed, 0, "cancelled steps commit nothing");
    assert!(!info.done, "position is untouched");
    e.shutdown();
}

#[test]
fn budget_tripped_steps_commit_and_the_session_stays_usable() {
    let e = engine();
    let spec = SearchSpec::uct()
        .tree_reuse(true)
        .seed(9)
        .max_playouts(16)
        .build();
    let id = e
        .open_session("budget", SameGame::random(6, 6, 3, 7), spec)
        .unwrap();
    let out = e.submit_session(id).unwrap().join();
    assert_eq!(out.state, JobState::Completed);
    let best = out.best.as_ref().expect("one replica ran");
    assert!(best.interrupted.is_some(), "a 16-playout budget trips");
    let info = e.session_info(id).unwrap();
    assert_eq!(info.committed, 1, "best-so-far head was committed");
    assert_eq!(info.steps, 1);
    assert!(!info.busy);
    // The trip did not poison the session: the next step commits too.
    let out = e.submit_session(id).unwrap().join();
    assert_eq!(out.state, JobState::Completed);
    assert_eq!(e.session_info(id).unwrap().committed, 2);
    e.shutdown();
}

#[test]
fn steps_are_strictly_serial_and_busy_sessions_resist_eviction() {
    let e = engine();
    let id = e
        .open_session(
            "serial",
            SlowWalk::new(40, Duration::from_millis(1)),
            warm_spec(3),
        )
        .unwrap();
    let h = e.submit_session(id).unwrap();
    match e.submit_session(id) {
        Err(SessionError::StepInFlight(i)) => assert_eq!(i, id),
        other => panic!("expected StepInFlight, got {other:?}"),
    }
    // With the only session busy, a count-bound open has nothing to
    // evict and must fail typed instead of dropping a running step.
    e.set_session_limits(SessionLimits {
        max_sessions: 1,
        ..Default::default()
    });
    match e.open_session("other", SameGame::random(4, 4, 3, 1), warm_spec(1)) {
        Err(SessionError::AtCapacity { open: 1, max: 1 }) => {}
        other => panic!("expected AtCapacity, got {other:?}"),
    }
    h.cancel();
    assert_eq!(h.join().state, JobState::Cancelled);
    // Idle again: the same open now evicts the LRU session instead.
    let id2 = e
        .open_session("other", SameGame::random(4, 4, 3, 1), warm_spec(1))
        .expect("idle LRU session is evictable");
    assert!(e.session_info(id).is_none(), "old session was evicted");
    assert!(e.session_info(id2).is_some());
    e.shutdown();
}

#[test]
fn closing_mid_step_unlists_while_the_step_finishes_on_its_own() {
    let e = engine();
    let id = e
        .open_session(
            "close",
            SlowWalk::new(30, Duration::from_micros(500)),
            warm_spec(5),
        )
        .unwrap();
    let h = e.submit_session(id).unwrap();
    assert!(e.close_session(id), "close unlists an open session");
    assert!(e.session_info(id).is_none());
    assert!(!e.close_session(id), "second close is a no-op");
    assert!(matches!(
        e.submit_session(id),
        Err(SessionError::NoSuchSession(_))
    ));
    // The in-flight step still terminates cleanly on its own reference.
    h.cancel();
    assert!(h.join().state.is_terminal());
    e.shutdown();
}

#[test]
fn engine_sessions_step_deterministically() {
    let e = engine();
    let spec = SearchSpec::uct()
        .tree_reuse(true)
        .seed(4)
        .max_playouts(64)
        .build();
    let run = || {
        let id = e
            .open_session("det", SameGame::random(5, 5, 3, 2), spec.clone())
            .unwrap();
        let mut scores = Vec::new();
        for _ in 0..3 {
            let out = e.submit_session(id).unwrap().join();
            assert_eq!(out.state, JobState::Completed);
            scores.push(out.best.as_ref().map(|b| b.result.score));
        }
        let info = e.session_info(id).unwrap();
        assert!(e.close_session(id));
        (scores, info.committed, info.score)
    };
    assert_eq!(run(), run(), "width-1 warm sessions are deterministic");
    e.shutdown();
}
