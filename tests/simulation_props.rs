//! Property-based tests of the discrete-event replay: conservation,
//! monotonicity, and determinism over randomly generated workloads.

use pnmcs::parallel::{simulate_trace, DispatchPolicy, RunMode, TraceModel};
use pnmcs::sim::ClusterSpec;
use proptest::prelude::*;

fn small_model(game_len: usize, branching: f64, sigma: f64) -> TraceModel {
    TraceModel {
        game_len,
        branching0: branching,
        demand0: 5_000.0,
        gamma: 2.5,
        sigma,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every job runs exactly once regardless of policy or cluster shape.
    #[test]
    fn work_conservation(
        seed in 0u64..500,
        n_clients in 1usize..20,
        game_len in 6usize..16,
    ) {
        let trace = small_model(game_len, 5.0, 0.3).synthesize(RunMode::FullGame, seed);
        for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
            let out = simulate_trace(&trace, &ClusterSpec::homogeneous(n_clients), policy);
            prop_assert_eq!(out.stats.jobs, trace.client_jobs);
            prop_assert_eq!(out.stats.total_work, trace.total_work);
            prop_assert!(out.makespan > 0);
        }
    }

    /// Doubling the client count never slows Last-Minute down (it is
    /// work-conserving; blind RR does not have this guarantee).
    #[test]
    fn lm_makespan_monotone_in_clients(seed in 0u64..200) {
        let trace = small_model(12, 6.0, 0.4).synthesize(RunMode::FirstMove, seed);
        let mut last = u64::MAX;
        for n in [1usize, 2, 4, 8, 16, 32] {
            let out = simulate_trace(
                &trace,
                &ClusterSpec::homogeneous(n),
                DispatchPolicy::LastMinute,
            );
            prop_assert!(
                out.makespan <= last,
                "{n} clients: {} after {last}",
                out.makespan
            );
            last = out.makespan;
        }
    }

    /// Utilisation stays in [0, 1] and decreases when clients multiply.
    #[test]
    fn utilisation_bounds(seed in 0u64..200) {
        let trace = small_model(10, 5.0, 0.3).synthesize(RunMode::FirstMove, seed);
        let few = simulate_trace(&trace, &ClusterSpec::homogeneous(2), DispatchPolicy::LastMinute);
        let many = simulate_trace(&trace, &ClusterSpec::homogeneous(64), DispatchPolicy::LastMinute);
        for out in [&few, &many] {
            prop_assert!(out.stats.mean_utilisation >= 0.0);
            prop_assert!(out.stats.max_utilisation <= 1.0 + 1e-9);
        }
        prop_assert!(few.stats.mean_utilisation >= many.stats.mean_utilisation);
    }

    /// Replay is bit-deterministic.
    #[test]
    fn replay_determinism(seed in 0u64..300, n in 1usize..32) {
        let trace = small_model(10, 4.0, 0.5).synthesize(RunMode::FullGame, seed);
        let cluster = ClusterSpec::homogeneous(n);
        let a = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute);
        let b = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute);
        prop_assert_eq!(a, b);
    }

    /// Faster clusters (uniformly scaled speeds) finish proportionally
    /// sooner when latency is zero.
    #[test]
    fn speed_scaling(seed in 0u64..100) {
        let trace = small_model(8, 4.0, 0.2).synthesize(RunMode::FirstMove, seed);
        let slow = ClusterSpec {
            clients: vec![pnmcs::sim::ClientSpec { speed: 1.0 }; 4],
            ns_per_unit: 1_000.0,
            latency: 0,
        };
        let fast = ClusterSpec {
            clients: vec![pnmcs::sim::ClientSpec { speed: 2.0 }; 4],
            ns_per_unit: 1_000.0,
            latency: 0,
        };
        let ts = simulate_trace(&trace, &slow, DispatchPolicy::LastMinute).makespan as f64;
        let tf = simulate_trace(&trace, &fast, DispatchPolicy::LastMinute).makespan as f64;
        let ratio = ts / tf;
        prop_assert!((1.9..2.1).contains(&ratio), "speed-2 cluster ratio {ratio}");
    }
}

#[test]
fn lm_beats_rr_on_heterogeneous_clusters_statistically() {
    // Table VI's claim over many synthetic workloads: count wins rather
    // than demanding pointwise dominance.
    let mut lm_wins = 0;
    let trials = 10;
    for seed in 0..trials {
        // Compute-dominated jobs (tens of ms vs 0.1 ms latency) and
        // enough width to queue on the 48-client repartition.
        let trace = TraceModel {
            game_len: 24,
            branching0: 8.0,
            demand0: 20_000.0,
            gamma: 2.5,
            sigma: 0.5,
        }
        .synthesize(RunMode::FirstMove, seed);
        let cluster = ClusterSpec::hetero_8x4_8x2().with_ns_per_unit(1e3);
        let rr = simulate_trace(&trace, &cluster, DispatchPolicy::RoundRobin).makespan;
        let lm = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute).makespan;
        if lm < rr {
            lm_wins += 1;
        }
    }
    assert!(
        lm_wins >= trials * 7 / 10,
        "LM should win on most heterogeneous workloads, won {lm_wins}/{trials}"
    );
}

#[test]
fn rr_ties_lm_on_homogeneous_uniform_workloads() {
    // §V: "results are similar to the Round-Robin algorithm at level 3"
    // on the homogeneous cluster — the gap only opens with heterogeneity.
    let trace = small_model(16, 6.0, 0.2).synthesize(RunMode::FirstMove, 3);
    let cluster = ClusterSpec::homogeneous(16).with_ns_per_unit(1e5);
    let rr = simulate_trace(&trace, &cluster, DispatchPolicy::RoundRobin).makespan as f64;
    let lm = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute).makespan as f64;
    let ratio = lm / rr;
    assert!(
        (0.7..1.3).contains(&ratio),
        "homogeneous LM/RR ratio {ratio}"
    );
}
