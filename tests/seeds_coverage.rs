//! Coverage for `parallel::seeds` — the cross-backend (and now
//! cross-engine) determinism contract: derivations must be stable across
//! calls, and must not collide across the coordinate ranges any
//! realistic search or engine workload visits.

use pnmcs::parallel::seeds::{client_seed, median_seed};
use std::collections::HashSet;

#[test]
fn median_seeds_never_collide_over_realistic_coordinate_ranges() {
    // A level-4 Morpion search sees well under 64 root steps × 512 root
    // moves; sweep past that with several root seeds.
    let mut seen = HashSet::new();
    for root_seed in [0u64, 1, 2009, u64::MAX] {
        for step in 0..64 {
            for mv in 0..128 {
                assert!(
                    seen.insert(median_seed(root_seed, step, mv)),
                    "collision at root_seed={root_seed} step={step} mv={mv}"
                );
            }
        }
    }
    assert_eq!(seen.len(), 4 * 64 * 128);
}

#[test]
fn client_seeds_never_collide_within_or_across_medians() {
    // Client seeds nest under median seeds; collisions across sibling
    // medians would correlate playouts the paper's algorithm assumes
    // independent.
    let mut seen = HashSet::new();
    for root_move in 0..16 {
        let m = median_seed(2009, 0, root_move);
        for step in 0..32 {
            for mv in 0..32 {
                assert!(
                    seen.insert(client_seed(m, step, mv)),
                    "collision under median {root_move} at step={step} mv={mv}"
                );
            }
        }
    }
    assert_eq!(seen.len(), 16 * 32 * 32);
}

#[test]
fn median_and_client_namespaces_are_disjoint() {
    // The two derivations are domain-separated: identical numeric
    // coordinates must never map to the same seed.
    let mut medians = HashSet::new();
    let mut clients = HashSet::new();
    for a in 0..32 {
        for b in 0..32 {
            medians.insert(median_seed(7, a, b));
            clients.insert(client_seed(7, a, b));
        }
    }
    assert!(medians.is_disjoint(&clients));
}

#[test]
fn derivations_are_stable_across_processes() {
    // Pinned values: these exact numbers are the contract that recorded
    // traces, the DES replay, and engine replica seeds all rely on. If
    // this test fails, every recorded artefact is invalidated — bump
    // deliberately, never accidentally.
    assert_eq!(median_seed(2009, 0, 0), 0xe370_2fe6_7fe8_c6bd);
    let pinned_median = median_seed(42, 1, 2);
    assert_eq!(pinned_median, 0x4fc8_6101_b711_a171);
    assert_eq!(client_seed(pinned_median, 3, 4), 0xe15e_b3e6_9bf5_4739);
    // Cross-coordinate sensitivity on every argument.
    assert_ne!(median_seed(42, 1, 2), median_seed(42, 1, 3));
    assert_ne!(median_seed(42, 1, 2), median_seed(42, 2, 2));
    assert_ne!(median_seed(42, 1, 2), median_seed(43, 1, 2));
    assert_ne!(
        client_seed(pinned_median, 3, 4),
        client_seed(pinned_median, 4, 3)
    );
    // And the engine's usage: replica seeds for one job are distinct.
    let job_seed = 31_337;
    let replicas: Vec<u64> = (0..64).map(|r| median_seed(job_seed, 0, r)).collect();
    let distinct: HashSet<&u64> = replicas.iter().collect();
    assert_eq!(distinct.len(), replicas.len());
}
