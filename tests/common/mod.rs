//! Helpers shared by the integration-test crates.

/// Worker count used by worker-count-sensitive assertions (pool
/// fan-out bit-identity, tree-parallel conformance). CI runs the whole
/// suite at both `NMCS_TEST_WORKERS=1` and `NMCS_TEST_WORKERS=4` so
/// each contract is exercised from both sides; locally the default
/// is 4.
pub fn test_workers() -> usize {
    std::env::var("NMCS_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}
