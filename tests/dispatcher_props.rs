//! Property-based tests of the dispatcher state machine: the scheduling
//! invariants that hold after *any* interleaving of requests and free
//! notices.

use pnmcs::parallel::{DispatchPolicy, DispatcherCore};
use proptest::prelude::*;

/// A scripted event against the dispatcher.
#[derive(Debug, Clone)]
enum Ev {
    Request { median: usize, moves: usize },
    Free { client_slot: usize },
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0usize..8, 0usize..60).prop_map(|(m, mv)| Ev::Request {
            median: 100 + m,
            moves: mv
        }),
        (0usize..4).prop_map(|c| Ev::Free { client_slot: c }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Last-Minute never leaves a job pending while a client sits on the
    /// free list, and never grants a busy client.
    #[test]
    fn lm_is_work_conserving(events in proptest::collection::vec(ev_strategy(), 1..80)) {
        let clients: Vec<usize> = vec![0, 1, 2, 3];
        let mut core = DispatcherCore::new(DispatchPolicy::LastMinute, clients);
        let mut busy = [false; 4];

        for ev in events {
            match ev {
                Ev::Request { median, moves } => {
                    if let Some(c) = core.on_request(median, moves) {
                        prop_assert!(!busy[c], "granted busy client {c}");
                        busy[c] = true;
                    }
                }
                Ev::Free { client_slot } => {
                    // Only a busy client can free.
                    if busy[client_slot] {
                        busy[client_slot] = false;
                        if let Some((_, c)) = core.on_client_free(client_slot) {
                            prop_assert_eq!(c, client_slot);
                            busy[c] = true;
                        }
                    }
                }
            }
            // The invariant: free list and pending queue never coexist.
            prop_assert!(
                core.free_clients() == 0 || core.pending_jobs() == 0,
                "free={} pending={}",
                core.free_clients(),
                core.pending_jobs()
            );
        }
    }

    /// Round-Robin grants every request immediately and cycles fairly.
    #[test]
    fn rr_grants_immediately_and_fairly(n_requests in 1usize..100) {
        let clients: Vec<usize> = vec![10, 11, 12];
        let mut core = DispatcherCore::new(DispatchPolicy::RoundRobin, clients);
        let mut counts = [0usize; 3];
        for i in 0..n_requests {
            let c = core.on_request(100, i).expect("RR always grants");
            counts[c - 10] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unfair cycle: {counts:?}");
    }

    /// Under Last-Minute, pending jobs are served longest-remaining first
    /// (fewest moves played), ties by arrival.
    #[test]
    fn lm_serves_longest_first(moves in proptest::collection::vec(0usize..50, 2..12)) {
        let mut core = DispatcherCore::new(DispatchPolicy::LastMinute, vec![0]);
        // Occupy the single client.
        let _ = core.on_request(99, 0);
        for (i, &m) in moves.iter().enumerate() {
            prop_assert_eq!(core.on_request(200 + i, m), None);
        }
        // Drain: medians must come back sorted by (moves, arrival).
        let mut expected: Vec<(usize, usize)> =
            moves.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        expected.sort();
        for (_, idx) in expected {
            let (median, _) = core.on_client_free(0).expect("job pending");
            prop_assert_eq!(median, 200 + idx);
        }
        prop_assert_eq!(core.pending_jobs(), 0);
    }

    /// The shortest-first ablation is the exact mirror of Last-Minute.
    #[test]
    fn sjf_is_the_mirror_of_lm(moves in proptest::collection::vec(0usize..50, 2..10)) {
        let mut lm = DispatcherCore::new(DispatchPolicy::LastMinute, vec![0]);
        let mut sjf = DispatcherCore::new(DispatchPolicy::LastMinuteShortest, vec![0]);
        let _ = lm.on_request(99, 0);
        let _ = sjf.on_request(99, 0);
        let distinct: Vec<usize> = {
            // Make sizes unique so the mirror property is exact.
            let mut v = moves.clone();
            v.sort_unstable();
            v.dedup();
            v
        };
        for (i, &m) in distinct.iter().enumerate() {
            let _ = lm.on_request(300 + i, m);
            let _ = sjf.on_request(300 + i, m);
        }
        let mut lm_order = Vec::new();
        let mut sjf_order = Vec::new();
        for _ in 0..distinct.len() {
            lm_order.push(lm.on_client_free(0).unwrap().0);
            sjf_order.push(sjf.on_client_free(0).unwrap().0);
        }
        sjf_order.reverse();
        prop_assert_eq!(lm_order, sjf_order);
    }
}
