//! Table VI live: why the Last-Minute dispatcher wins on heterogeneous
//! clusters.
//!
//! Replays a paper-scale level-3 workload on the paper's oversubscribed
//! repartitions (16×4+16×2 and 8×4+8×2) under all four dispatch policies,
//! showing the utilisation gap that blind Round-Robin leaves on the
//! table and how much of Last-Minute's gain comes from its longest-first
//! job ordering.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster [seed]
//! ```

use pnmcs::parallel::{
    simulate_trace, simulate_trace_recorded, DispatchPolicy, RunMode, TraceModel,
};
use pnmcs::sim::{format_time, gantt, ClusterSpec};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2009);
    let trace = TraceModel::level3_like().synthesize(RunMode::FirstMove, seed);
    println!(
        "level-3-like first-move workload: {} client jobs, {} Mwu total\n",
        trace.client_jobs,
        trace.total_work / 1_000_000
    );

    let policies = [
        DispatchPolicy::LastMinute,
        DispatchPolicy::LastMinuteFifo,
        DispatchPolicy::LastMinuteShortest,
        DispatchPolicy::RoundRobin,
    ];

    for (name, cluster) in [
        ("16x4+16x2 (96 clients)", ClusterSpec::hetero_16x4_16x2()),
        ("8x4+8x2   (48 clients)", ClusterSpec::hetero_8x4_8x2()),
        ("64 homogeneous", ClusterSpec::paper_64()),
    ] {
        println!(
            "{name}: capacity {:.0} core-equivalents",
            cluster.capacity()
        );
        let mut lm_time = None;
        for policy in policies {
            let out = simulate_trace(&trace, &cluster, policy);
            if policy == DispatchPolicy::LastMinute {
                lm_time = Some(out.makespan);
            }
            let vs = lm_time
                .map(|lm| format!("{:+6.1}%", (out.makespan as f64 / lm as f64 - 1.0) * 100.0))
                .unwrap_or_default();
            println!(
                "  {:<7} {:>9}  util {:>3.0}%  queue-wait {:>7}   {}",
                policy.to_string(),
                format_time(out.makespan),
                out.stats.mean_utilisation * 100.0,
                format_time(out.stats.mean_queue_wait as u64),
                vs
            );
        }
        println!();
    }
    println!(
        "Paper (Table VI, level 3): LM 14s vs RR 16s on 16x4+16x2, \
         LM 18s vs RR 25s on 8x4+8x2."
    );

    // Gantt view of the mechanism on a small mixed cluster: RR lets the
    // slow clients (top rows) become the critical path while fast ones
    // idle; LM keeps everyone busy.
    let small = TraceModel {
        game_len: 16,
        branching0: 6.0,
        ..TraceModel::level3_like()
    }
    .synthesize(RunMode::FirstMove, seed);
    let tiny_cluster = ClusterSpec::oversubscribed(1, 1).with_ns_per_unit(2e3); // 4 slow + 2 fast
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        let (out, timelines) = simulate_trace_recorded(&small, &tiny_cluster, policy);
        println!(
            "\n{policy} on 4 slow + 2 fast clients ({}):",
            format_time(out.makespan)
        );
        print!("{}", gantt(&timelines, out.makespan, 60));
    }
}
