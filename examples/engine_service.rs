//! Tour of the `nmcs-engine` search service: a few dozen mixed jobs
//! (Morpion Solitaire, SameGame, rollout-TSP) submitted concurrently,
//! with streamed progress, a mid-flight cancellation, a diversified
//! ensemble, and a throughput summary.
//!
//! ```text
//! cargo run --release --example engine_service
//! ```

use pnmcs::engine::{Algorithm, Engine, EngineConfig, JobSpec, JobState, SubmitError};
use pnmcs::games::{SameGame, TspGame, TspInstance};
use pnmcs::morpion::{cross_board, standard_5d, Variant};
use std::time::{Duration, Instant};

fn main() {
    let workers = 4;
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity: 64,
    })
    .expect("valid engine config");
    println!("engine up: {workers} workers, queue capacity 64\n");
    let started = Instant::now();

    // --- a few dozen mixed jobs, three domains × two algorithms -------
    let mut handles = Vec::new();
    for i in 0..36u64 {
        let spec = match i % 4 {
            0 => JobSpec::new(
                format!("morpion-{i}"),
                cross_board(Variant::Disjoint, 2),
                Algorithm::nested(1),
                2009 + i,
            ),
            1 => JobSpec::new(
                format!("samegame-{i}"),
                SameGame::random(6, 6, 3, i),
                Algorithm::nested(1),
                2009 + i,
            ),
            2 => JobSpec::new(
                format!("tsp-{i}"),
                TspGame::new(TspInstance::random(9, i), None),
                Algorithm::nested(1),
                2009 + i,
            ),
            _ => JobSpec::new(
                format!("samegame-nrpa-{i}"),
                SameGame::random(5, 5, 3, i),
                Algorithm::nrpa(1, 24),
                2009 + i,
            ),
        };
        // Fast path first; fall back to blocking (backpressure) if full.
        let handle = match engine.try_submit(spec) {
            Ok(h) => h,
            Err((SubmitError::QueueFull { .. }, spec)) => engine.submit(spec).expect("engine up"),
            Err((e, _)) => panic!("submit failed: {e}"),
        };
        handles.push(handle);
    }
    println!("submitted {} mixed jobs", handles.len());

    // --- one deliberately heavy job we will cancel mid-flight ---------
    let victim = engine
        .submit(JobSpec::new(
            "morpion-heavy (to be cancelled)",
            standard_5d(),
            Algorithm::nested(2),
            7,
        ))
        .expect("engine up");

    // --- one diversified ensemble -------------------------------------
    let ensemble = engine
        .submit(
            JobSpec::new(
                "samegame-ensemble",
                SameGame::random(6, 6, 3, 99),
                Algorithm::nested(1),
                424242,
            )
            .with_replicas(4)
            .with_policy_diversification(),
        )
        .expect("engine up");

    // --- stream progress while the fleet drains ------------------------
    std::thread::sleep(Duration::from_millis(30));
    victim.cancel();
    println!("cancelled '{}' mid-flight", victim.name());

    loop {
        let done = handles
            .iter()
            .filter(|h| h.poll_progress().state.is_terminal())
            .count();
        let ens = ensemble.poll_progress();
        println!(
            "  [{:>6.1?}] {done}/{} jobs done | ensemble {}/{} replicas, best {:?} | queue depth {}",
            started.elapsed(),
            handles.len(),
            ens.replicas_done,
            ens.replicas_total,
            ens.best_score,
            engine.stats().queue_depth,
        );
        if done == handles.len() && ens.state.is_terminal() {
            break;
        }
        std::thread::sleep(Duration::from_millis(150));
    }

    // --- results --------------------------------------------------------
    let cancelled = victim.join();
    assert_eq!(cancelled.state, JobState::Cancelled);
    println!(
        "\ncancelled job finished as {:?} after {:?} (no result reported: {})",
        cancelled.state,
        cancelled.elapsed,
        cancelled.best.is_none(),
    );

    let ens_out = ensemble.join();
    println!(
        "ensemble best score {:?} from replica {:?}; per replica:",
        ens_out.score(),
        ens_out.best.as_ref().map(|b| b.replica)
    );
    for r in ens_out.replicas.iter().flatten() {
        println!(
            "    replica {} seed {:#018x} policy {:?} -> score {}",
            r.replica, r.seed_used, r.memory_policy, r.result.score
        );
    }

    let mut best_lines: Vec<String> = Vec::new();
    for h in handles {
        let out = h.join();
        best_lines.push(format!("{:<18} {:>6}", out.name, out.score().unwrap()));
    }
    println!("\nsample of per-job best scores:");
    for line in best_lines.iter().take(8) {
        println!("    {line}");
    }

    // --- throughput summary ---------------------------------------------
    let elapsed = started.elapsed();
    let stats = engine.stats();
    println!("\nthroughput summary");
    println!("    wall clock          {elapsed:?}");
    println!(
        "    jobs completed      {} ({:.1} jobs/sec)",
        stats.completed_jobs,
        stats.completed_jobs as f64 / elapsed.as_secs_f64()
    );
    println!("    jobs cancelled      {}", stats.cancelled_jobs);
    println!("    replica tasks run   {}", stats.executed_tasks);
    println!("    tasks stolen        {}", stats.stolen_tasks);
    println!("    work units          {}", stats.total_work_units);
    println!(
        "    peak queue depth    {}/{}",
        stats.peak_queue_depth, stats.queue_capacity
    );
    engine.shutdown();
}
