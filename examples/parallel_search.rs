//! Parallel NMCS with real processes: the paper's §IV architecture on
//! threads, then the same search replayed on the simulated 64-client
//! cluster.
//!
//! Demonstrates the determinism contract: the threaded runtime, the
//! sequential reference, and the discrete-event simulator all reach the
//! same score with the same seed — only the clock differs.
//!
//! ```text
//! cargo run --release --example parallel_search [seed]
//! ```

// `run_threads` is deprecated in favour of `SearchSpec::root_parallel`;
// this example demonstrates the message-passing runtime itself (and that
// the unified spec agrees with it), so it calls the shim deliberately.
#![allow(deprecated)]

use pnmcs::morpion::{cross_board, Variant};
use pnmcs::parallel::{
    run_threads, simulate_trace, trace::run_reference, DispatchPolicy, RunMode, ThreadConfig,
};
use pnmcs::search::SearchSpec;
use pnmcs::sim::{format_time, ClusterSpec};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    // The reduced cross keeps a level-3 search interactive on a laptop.
    let board = cross_board(Variant::Disjoint, 3);
    let level = 3;

    println!("Parallel NMCS level {level} (first move) on the 24-point 5D cross\n");

    // 1. Threaded backend: every role is an OS thread.
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::LastMinute] {
        let mut config = ThreadConfig::new(level, policy, 4);
        config.n_medians = 16;
        config.seed = seed;
        config.mode = RunMode::FirstMove;
        let (outcome, report) = run_threads(&board, &config);
        println!(
            "threads/{policy}: score {} with {} client jobs ({} work units) in {:.2?}",
            outcome.score, outcome.client_jobs, report.total_work, report.wall
        );
    }

    // 2. The unified front door runs the same strategy (budgets and
    //    cancellation available) with an identical outcome.
    let spec_report = SearchSpec::root_parallel(level, 4)
        .seed(seed)
        .first_move_only()
        .run(&board);
    println!(
        "spec:      score {} with {} client jobs ({} work units) in {:.2?}",
        spec_report.score,
        spec_report.client_jobs,
        spec_report.total_work(),
        spec_report.elapsed
    );

    // 3. Tree-level parallelism — the scheme from the parallel-MCTS
    //    literature the paper cites — through the same front door: one
    //    shared UCT tree with per-node (sharded) locks and WU-UCT
    //    unobserved-sample statistics steering concurrent workers
    //    apart. One worker is bit-identical to `SearchSpec::uct()`;
    //    more workers trade determinism for wall-clock (the honest
    //    contract is on `AlgorithmSpec::worker_count_deterministic`).
    for workers in [1usize, 4] {
        let tree = SearchSpec::tree_parallel(workers).seed(seed).run(&board);
        println!(
            "tree×{workers}:   score {} from {} playouts in {:.2?}{}",
            tree.score,
            tree.stats.playouts,
            tree.elapsed,
            if workers == 1 { "  (≡ uct)" } else { "" }
        );
    }

    //    The execution knobs are builder methods: the PR-4 global arena
    //    mutex and plain virtual loss remain available as the measured
    //    baseline, and batched-leaf mode hands each worker's rollouts
    //    to the executor pool in slabs (WU-UCT's master/worker shape).
    {
        use pnmcs::search::{LockStrategy, StatsMode};
        let arena = SearchSpec::tree_parallel(4)
            .lock_strategy(LockStrategy::Global)
            .stats_mode(StatsMode::VirtualLoss)
            .seed(seed)
            .run(&board);
        let batched = SearchSpec::tree_parallel(4)
            .leaf_batch(8)
            .seed(seed)
            .run(&board);
        println!(
            "tree×4 global/vloss (arena baseline): score {} in {:.2?}",
            arena.score, arena.elapsed
        );
        println!(
            "tree×4 sharded/wu-uct batch-8:        score {} in {:.2?}",
            batched.score, batched.elapsed
        );
    }

    // 4. Sequential reference records the job trace...
    let (ref_out, trace) = run_reference(&board, level, seed, RunMode::FirstMove, None);
    println!(
        "reference: score {} — identical to both threaded runs by construction",
        ref_out.score
    );

    // 5. ...which the simulator replays on the paper's cluster shapes.
    println!("\nvirtual-time replay of the same search:");
    for n in [1usize, 4, 16, 64] {
        let cluster = if n == 64 {
            ClusterSpec::paper_64()
        } else {
            ClusterSpec::homogeneous(n)
        };
        let out = simulate_trace(&trace, &cluster, DispatchPolicy::LastMinute);
        println!(
            "  {n:>2} clients: {:>9}  (mean utilisation {:>3.0}%)",
            format_time(out.makespan),
            out.stats.mean_utilisation * 100.0
        );
    }
}
