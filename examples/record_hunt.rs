//! Record hunting: the workflow that found the paper's 80-move world
//! record, scaled to a laptop.
//!
//! Runs repeated seeded searches — NMCS (the paper) or NRPA (Rosin's
//! successor that took the record back) — keeps the best verified game,
//! renders it and persists the portable record JSON. The paper ran the
//! same loop at level 4 on 64 cores for days; the machinery here is
//! identical, only the budget differs.
//!
//! ```text
//! cargo run --release --example record_hunt [attempts] [level] [out.json] [nmcs|nrpa]
//! ```

use pnmcs::morpion::{canonical_hash, render_default, standard_5d, GameRecord};
use pnmcs::search::{Game, NrpaConfig, SearchSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let attempts: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let level: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let out = args
        .next()
        .unwrap_or_else(|| "target/best_record.json".into());
    let algo = args.next().unwrap_or_else(|| "nmcs".into());

    let board = standard_5d();
    let mut best: Option<(i64, GameRecord)> = None;

    let mut seen_grids = std::collections::HashSet::new();
    println!("hunting with {attempts} level-{level} {algo} searches…");
    for seed in 0..attempts {
        // Each attempt is one SearchSpec run; the spec JSON is the full
        // provenance of a record (algorithm + tunables + seed).
        let spec = match algo.as_str() {
            "nrpa" => SearchSpec::nrpa_with(level, NrpaConfig::with_iterations(60)),
            _ => SearchSpec::nested(level),
        }
        .seed(seed)
        .build();
        let result = spec.run(&board);
        let mut replay = board.clone();
        for mv in &result.sequence {
            replay.play(mv);
        }
        let record = GameRecord::from_board(&replay, format!("level {level}, seed {seed}"));
        let verified = record.verify().expect("legal by construction") as i64;
        assert_eq!(verified, result.score);
        // Symmetry-aware dedup: mirrored/rotated rediscoveries don't count.
        let fresh = seen_grids.insert(canonical_hash(&replay));
        let is_best = best.as_ref().is_none_or(|(b, _)| verified > *b);
        println!(
            "  seed {seed}: {verified} moves in {:.1?}{}{}",
            result.elapsed,
            if is_best { "  <- new best" } else { "" },
            if fresh { "" } else { "  (symmetry duplicate)" }
        );
        if is_best {
            best = Some((verified, record));
        }
    }

    let (score, record) = best.expect("at least one attempt");
    let replayed = record.replay().expect("stored record is legal");
    println!("\nbest verified game: {score} moves\n");
    println!("{}", render_default(&replayed));
    println!(
        "milestones: human 68 | simulated annealing 79 | paper's level-4 parallel: 80 \
         | proven bound 121"
    );

    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialises"),
    )
    .expect("write record");
    println!("record persisted to {out}");
}
