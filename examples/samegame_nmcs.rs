//! The generic API on other domains: SameGame and a rollout-TSP.
//!
//! NMCS is domain-agnostic — anything implementing `Game` can be
//! searched sequentially, on the thread cluster, or in the simulator.
//! This example runs the searches the paper's related work applies to
//! these domains: plain sampling, flat Monte-Carlo, and nested search.
//!
//! ```text
//! cargo run --release --example samegame_nmcs [seed]
//! ```

use pnmcs::games::{SameGame, TspGame, TspInstance};
use pnmcs::search::{sample, Rng, SearchSpec};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    // ---- SameGame ----
    let board = SameGame::random(10, 10, 4, seed);
    println!("SameGame 10x10, 4 colours (seed {seed}):");
    let mut rng = Rng::seeded(seed);
    let random_avg: f64 = (0..20)
        .map(|_| sample(&board, &mut rng).score as f64)
        .sum::<f64>()
        / 20.0;
    let flat = SearchSpec::flat_mc(200).seed(seed).run(&board);
    let l1 = SearchSpec::nested(1).seed(seed).run(&board);
    let l2 = SearchSpec::nested(2).seed(seed).run(&board);
    println!("  random playout (mean of 20): {random_avg:.0}");
    println!("  flat MC, 200 playouts:       {}", flat.score);
    println!("  NMCS level 1:                {}", l1.score);
    println!("  NMCS level 2:                {}", l2.score);

    // ---- Rollout TSP (the domain of the paper's rollout-parallelism
    //      prior work, Guerriero & Mancini 2005) ----
    let instance = TspInstance::random(24, seed);
    let tour = TspGame::new(instance, Some(8)); // 8-nearest neighbourhood
    println!("\nTSP, 24 random cities, 8-nearest-neighbour moves:");
    let rand_len = -sample(&tour, &mut Rng::seeded(seed)).score;
    let l1 = SearchSpec::nested(1).seed(seed).run(&tour);
    let l2 = SearchSpec::nested(2).seed(seed).run(&tour);
    println!("  random tour length: {rand_len}");
    println!("  NMCS level 1:       {}", -l1.score);
    println!("  NMCS level 2:       {}", -l2.score);
    println!(
        "\nShorter is better; each nesting level amplifies the level below, \
         exactly as on Morpion."
    );
}
