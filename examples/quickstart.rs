//! Quickstart: sequential Nested Monte-Carlo Search on Morpion Solitaire.
//!
//! Plays the paper's §III algorithm at levels 0–2 on the official
//! 36-point 5D cross and prints the resulting grids, demonstrating the
//! "each level amplifies the one below" behaviour that motivates the
//! whole paper.
//!
//! ```text
//! cargo run --release --example quickstart [seed]
//! ```

use pnmcs::morpion::{render_default, standard_5d, GameRecord};
use pnmcs::search::{Game, SearchSpec};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2009);
    let board = standard_5d();
    println!("Morpion Solitaire, disjoint (5D) version — the paper's domain.");
    println!(
        "Start position ({} points):\n",
        board.initial_points().len()
    );
    println!("{}", render_default(&board));

    for level in 0..=2u32 {
        // The unified front door: one call, any strategy, reproducible
        // from the seed (add .deadline_ms(..) to bound it).
        let result = SearchSpec::nested(level).seed(seed).run(&board);
        println!(
            "level {level}: score {:>3} moves  ({} playouts, {:.2?})",
            result.score, result.stats.playouts, result.elapsed
        );

        if level == 2 {
            let mut replay = board.clone();
            for mv in &result.sequence {
                replay.play(mv);
            }
            let record = GameRecord::from_board(&replay, format!("quickstart seed {seed}"));
            record.verify().expect("search output must replay legally");
            println!("\nBest grid found (level 2, {} moves):\n", result.score);
            println!("{}", render_default(&replay));
            println!(
                "Context: best human score 68, pre-paper record 79 (simulated \
                 annealing),\nthe paper's parallel level-4 record 80, proven bound 121."
            );
        }
    }
}
