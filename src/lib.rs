//! # pnmcs — Parallel Nested Monte-Carlo Search
//!
//! A full reproduction of *"Parallel Nested Monte-Carlo Search"*
//! (Cazenave & Jouandeau, NIDISC/IPDPS 2009) as a Rust workspace. This
//! facade crate re-exports the public API of every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`search`] | `nmcs-core` | the `Game` trait, `sample`, `nested`, baselines, RNG |
//! | [`morpion`] | `morpion` | Morpion Solitaire 5T/5D, records, rendering |
//! | [`games`] | `nmcs-games` | SameGame, rollout-TSP, toy validation games |
//! | [`parallel`] | `parallel-nmcs` | root/median/dispatcher/client roles, RR & LM dispatchers, backends |
//! | [`cluster`] | `cluster-rt` | MPI-like in-process message passing |
//! | [`sim`] | `des-sim` | deterministic discrete-event cluster simulation |
//! | [`engine`] | `nmcs-engine` | concurrent multi-tenant search service: job queue, work-stealing workers, backpressure, cancellation |
//! | [`serve`] | `nmcs-serve` | HTTP/1.1 front door for the engine: submit/poll/cancel/metrics routes with admission control |
//!
//! ## Quickstart — one front door for every backend
//!
//! A [`search::SearchSpec`] names a strategy, its configuration, a
//! budget (deadline / playout cap / node cap), and a seed; `run` works
//! the same for every backend and returns one `SearchReport`:
//!
//! ```
//! use pnmcs::search::SearchSpec;
//! use pnmcs::morpion::standard_5d;
//!
//! // A level-1 Nested Monte-Carlo Search on the official 5D cross,
//! // bounded to half a second of wall clock.
//! let report = SearchSpec::nested(1)
//!     .seed(2009)
//!     .deadline_ms(500)
//!     .run(&standard_5d());
//! assert!(report.score > 40, "level 1 comfortably beats random play");
//! ```
//!
//! ## Parallel search through the same door
//!
//! The paper's root-parallel hierarchy and the leaf-parallel batch
//! executor are spec strategies too — identical results for any worker
//! count, cancellable, budgetable:
//!
//! ```
//! use pnmcs::search::SearchSpec;
//! use pnmcs::morpion::{cross_board, Variant};
//!
//! let board = cross_board(Variant::Disjoint, 2); // reduced cross
//! let report = SearchSpec::root_parallel(2, 2)
//!     .seed(7)
//!     .first_move_only()
//!     .run(&board);
//! assert!(report.score > 0);
//! assert!(report.total_work() > 0);
//! ```
//!
//! (The message-passing reproduction itself — root/median/dispatcher/
//! client over `cluster-rt` — lives on as `parallel::run_threads_traced`
//! for the communication-pattern experiments.)
//!
//! ## The search service
//!
//! Many concurrent searches — any game × any algorithm — share one
//! engine (see `examples/engine_service.rs` for the full tour):
//!
//! ```
//! use pnmcs::engine::{Algorithm, Engine, EngineConfig, JobSpec};
//! use pnmcs::games::SumGame;
//!
//! let engine = Engine::start(EngineConfig { workers: 2, queue_capacity: 16 }).expect("valid engine config");
//! let job = engine
//!     .submit(JobSpec::new("doc", SumGame::random(5, 3, 1), Algorithm::nested(1), 7))
//!     .unwrap();
//! assert!(job.join().score().unwrap() > 0);
//! engine.shutdown();
//! ```

pub use cluster_rt as cluster;
pub use des_sim as sim;
pub use morpion;
pub use nmcs_core as search;
pub use nmcs_engine as engine;
pub use nmcs_games as games;
pub use nmcs_serve as serve;
pub use parallel_nmcs as parallel;
