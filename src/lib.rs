//! # pnmcs — Parallel Nested Monte-Carlo Search
//!
//! A full reproduction of *"Parallel Nested Monte-Carlo Search"*
//! (Cazenave & Jouandeau, NIDISC/IPDPS 2009) as a Rust workspace. This
//! facade crate re-exports the public API of every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`search`] | `nmcs-core` | the `Game` trait, `sample`, `nested`, baselines, RNG |
//! | [`morpion`] | `morpion` | Morpion Solitaire 5T/5D, records, rendering |
//! | [`games`] | `nmcs-games` | SameGame, rollout-TSP, toy validation games |
//! | [`parallel`] | `parallel-nmcs` | root/median/dispatcher/client roles, RR & LM dispatchers, backends |
//! | [`cluster`] | `cluster-rt` | MPI-like in-process message passing |
//! | [`sim`] | `des-sim` | deterministic discrete-event cluster simulation |
//! | [`engine`] | `nmcs-engine` | concurrent multi-tenant search service: job queue, work-stealing workers, backpressure, cancellation |
//!
//! ## Quickstart
//!
//! ```
//! use pnmcs::search::{nested, NestedConfig, Rng};
//! use pnmcs::morpion::standard_5d;
//!
//! // A level-1 Nested Monte-Carlo Search on the official 5D cross.
//! let result = nested(
//!     &standard_5d(),
//!     1,
//!     &NestedConfig::paper(),
//!     &mut Rng::seeded(2009),
//! );
//! assert!(result.score > 40, "level 1 comfortably beats random play");
//! ```
//!
//! ## Parallel search on threads
//!
//! ```
//! use pnmcs::parallel::{run_threads, DispatchPolicy, RunMode, ThreadConfig};
//! use pnmcs::morpion::{cross_board, Variant};
//!
//! let board = cross_board(Variant::Disjoint, 2); // reduced cross
//! let mut config = ThreadConfig::new(2, DispatchPolicy::LastMinute, 2);
//! config.n_medians = 4;
//! config.mode = RunMode::FirstMove;
//! let (outcome, report) = run_threads(&board, &config);
//! assert!(outcome.score > 0);
//! assert!(report.total_work > 0);
//! ```
//!
//! ## The search service
//!
//! Many concurrent searches — any game × any algorithm — share one
//! engine (see `examples/engine_service.rs` for the full tour):
//!
//! ```
//! use pnmcs::engine::{Algorithm, Engine, EngineConfig, JobSpec};
//! use pnmcs::games::SumGame;
//!
//! let engine = Engine::start(EngineConfig { workers: 2, queue_capacity: 16 }).expect("valid engine config");
//! let job = engine
//!     .submit(JobSpec::new("doc", SumGame::random(5, 3, 1), Algorithm::nested(1), 7))
//!     .unwrap();
//! assert!(job.join().score().unwrap() > 0);
//! engine.shutdown();
//! ```

pub use cluster_rt as cluster;
pub use des_sim as sim;
pub use morpion;
pub use nmcs_core as search;
pub use nmcs_engine as engine;
pub use nmcs_games as games;
pub use parallel_nmcs as parallel;
